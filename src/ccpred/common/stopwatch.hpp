#pragma once

/// \file stopwatch.hpp
/// Minimal wall-clock stopwatch used for Table-2 style timing reports.

#include <chrono>

namespace ccpred {

/// Starts on construction; elapsed_s()/elapsed_ms() read without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds since construction/reset.
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds since construction/reset.
  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ccpred
