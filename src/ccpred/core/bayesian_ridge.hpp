#pragma once

/// \file bayesian_ridge.hpp
/// Bayesian ridge regression (paper §3.1 "BR"): ridge with Gaussian priors
/// on the coefficients whose precision hyper-parameters (alpha: noise,
/// lambda: weights) are estimated from the data by evidence (marginal
/// likelihood) maximization, following MacKay's iterative update rules as
/// implemented in scikit-learn.

#include <memory>
#include <string>
#include <vector>

#include "ccpred/core/regressor.hpp"
#include "ccpred/data/scaler.hpp"

namespace ccpred::ml {

/// Parameters: "max_iter", "tol", plus the four Gamma hyper-priors
/// "alpha_1", "alpha_2", "lambda_1", "lambda_2".
class BayesianRidgeRegression : public UncertaintyRegressor {
 public:
  BayesianRidgeRegression();

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const linalg::Matrix& x) const override;
  void predict_with_std(const linalg::Matrix& x, std::vector<double>& mean,
                        std::vector<double>& std) const override;
  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return fitted_; }

  /// Estimated noise precision.
  double alpha() const { return alpha_; }
  /// Estimated weight precision.
  double lambda() const { return lambda_; }
  /// Posterior mean coefficients (standardized feature space).
  const std::vector<double>& coefficients() const { return coef_; }

 private:
  int max_iter_ = 300;
  double tol_ = 1e-4;
  double alpha_1_ = 1e-6, alpha_2_ = 1e-6;
  double lambda_1_ = 1e-6, lambda_2_ = 1e-6;

  bool fitted_ = false;
  double alpha_ = 1.0;
  double lambda_ = 1.0;
  data::StandardScaler scaler_;
  data::TargetScaler y_scaler_;
  std::vector<double> coef_;
  linalg::Matrix posterior_cov_;  // for predictive variance
};

}  // namespace ccpred::ml
