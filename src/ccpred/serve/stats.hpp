#pragma once

/// \file stats.hpp
/// The serving subsystem's observable state: one plain snapshot struct
/// filled by Server::stats() and rendered by the line protocol's `stats`
/// response. Kept dependency-free so both server.cpp and protocol.cpp can
/// include it.

#include <cstddef>
#include <cstdint>

namespace ccpred::serve {

/// Point-in-time snapshot of a running Server.
struct ServerStats {
  std::uint64_t requests = 0;        ///< requests handled (incl. errors)
  std::uint64_t errors = 0;          ///< requests answered with ok=false
  std::uint64_t sweeps_computed = 0; ///< full enumerate+predict sweeps run
  std::uint64_t coalesced = 0;       ///< requests that joined an in-flight sweep
  std::uint64_t cache_hits = 0;      ///< sweep-cache hits
  std::uint64_t cache_misses = 0;    ///< sweep-cache misses
  std::uint64_t cache_evictions = 0; ///< sweep-cache LRU evictions
  double cache_hit_rate = 0.0;       ///< hits / (hits + misses), 0 if unused
  std::size_t cache_size = 0;        ///< cached sweeps right now
  std::size_t queue_depth = 0;       ///< submitted but unfinished requests
  std::uint64_t deadline_exceeded = 0;  ///< requests answered code="deadline"
  std::uint64_t shed = 0;               ///< requests rejected code="overloaded"
  std::uint64_t stale_served = 0;       ///< ok answers from a stale model
  std::uint64_t reload_failures = 0;    ///< failed artifact load attempts
  std::uint64_t retries = 0;            ///< client retries recorded (serverd)
  std::uint64_t models_loaded = 0;   ///< registry artifact (re)loads
  std::uint64_t models_trained = 0;  ///< train-and-cache fallbacks taken
  double latency_p50_ms = 0.0;       ///< median request latency
  double latency_p95_ms = 0.0;       ///< tail request latency
  double latency_mean_ms = 0.0;      ///< mean request latency
};

}  // namespace ccpred::serve
