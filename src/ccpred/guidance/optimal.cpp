#include "ccpred/guidance/optimal.hpp"

#include "ccpred/common/error.hpp"

namespace ccpred::guide {

double objective_value(const data::Dataset& dataset,
                       const std::vector<double>& y, std::size_t i,
                       Objective objective) {
  CCPRED_CHECK(i < dataset.size() && y.size() == dataset.size());
  switch (objective) {
    case Objective::kShortestTime:
      return y[i];
    case Objective::kNodeHours:
      return sim::CcsdSimulator::node_hours(dataset.config(i), y[i]);
  }
  throw Error("unknown objective");
}

std::vector<OptimalChoice> get_optimal_values(const data::Dataset& dataset,
                                              const std::vector<double>& y,
                                              Objective objective) {
  CCPRED_CHECK_MSG(y.size() == dataset.size(), "y size mismatch");
  std::vector<OptimalChoice> out;
  for (const auto& [key, rows] : dataset.group_by_problem()) {
    OptimalChoice best;
    best.o = key.first;
    best.v = key.second;
    bool first = true;
    for (auto r : rows) {
      const double value = objective_value(dataset, y, r, objective);
      if (first || value < best.value) {
        best.row = r;
        best.config = dataset.config(r);
        best.value = value;
        first = false;
      }
    }
    out.push_back(best);
  }
  return out;
}

std::vector<ProblemOutcome> evaluate_optima(const data::Dataset& dataset,
                                            const std::vector<double>& y_pred,
                                            Objective objective) {
  const auto truths = get_optimal_values(dataset, dataset.targets(), objective);
  const auto preds = get_optimal_values(dataset, y_pred, objective);
  CCPRED_CHECK(truths.size() == preds.size());

  std::vector<ProblemOutcome> out;
  out.reserve(truths.size());
  for (std::size_t i = 0; i < truths.size(); ++i) {
    CCPRED_CHECK(truths[i].o == preds[i].o && truths[i].v == preds[i].v);
    ProblemOutcome po;
    po.o = truths[i].o;
    po.v = truths[i].v;
    po.truth = truths[i];
    po.predicted = preds[i];
    po.true_value = truths[i].value;
    // True-loss semantics: look up the TRUE target at the predicted row.
    po.realized_value = objective_value(dataset, dataset.targets(),
                                        preds[i].row, objective);
    po.true_time = dataset.target(truths[i].row);
    po.realized_time = dataset.target(preds[i].row);
    po.config_match = truths[i].config.nodes == preds[i].config.nodes &&
                      truths[i].config.tile == preds[i].config.tile;
    out.push_back(po);
  }
  return out;
}

ml::Scores compute_losses(const std::vector<ProblemOutcome>& outcomes) {
  CCPRED_CHECK_MSG(!outcomes.empty(), "no outcomes to score");
  std::vector<double> truth;
  std::vector<double> realized;
  truth.reserve(outcomes.size());
  realized.reserve(outcomes.size());
  for (const auto& po : outcomes) {
    truth.push_back(po.true_value);
    realized.push_back(po.realized_value);
  }
  return ml::score_all(truth, realized);
}

}  // namespace ccpred::guide
