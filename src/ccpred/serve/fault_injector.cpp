#include "ccpred/serve/fault_injector.hpp"

#include <chrono>
#include <thread>

#include "ccpred/common/error.hpp"

namespace ccpred::serve {
namespace {

/// splitmix64 finalizer: a strong 64-bit mixer, the same construction the
/// library's Rng uses for seeding.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int index_of(FaultPoint point) {
  const int i = static_cast<int>(point);
  CCPRED_CHECK_MSG(i >= 0 && i < kFaultPointCount,
                   "invalid fault point " << i);
  return i;
}

double point_probability(const FaultOptions& o, FaultPoint point) {
  switch (point) {
    case FaultPoint::kArtifactRead: return o.artifact_read_failure;
    case FaultPoint::kSweepCompute: return o.sweep_delay;
    case FaultPoint::kWorkerStall: return o.worker_stall;
    case FaultPoint::kCacheShard: return o.cache_shard_hold;
    case FaultPoint::kReportIngest: return o.report_ingest;
    case FaultPoint::kRefitStall: return o.refit_stall;
    case FaultPoint::kPromotionRace: return o.promotion_race;
    case FaultPoint::kShardKill: return o.shard_kill;
    case FaultPoint::kShardRestart: return o.shard_restart;
  }
  return 0.0;
}

double point_base_delay_ms(const FaultOptions& o, FaultPoint point) {
  switch (point) {
    case FaultPoint::kSweepCompute: return o.sweep_delay_ms;
    case FaultPoint::kWorkerStall: return o.worker_stall_ms;
    case FaultPoint::kCacheShard: return o.cache_shard_hold_ms;
    case FaultPoint::kReportIngest: return o.report_ingest_ms;
    case FaultPoint::kRefitStall: return o.refit_stall_ms;
    case FaultPoint::kPromotionRace: return o.promotion_race_ms;
    case FaultPoint::kArtifactRead: return 0.0;   // fires by throwing
    case FaultPoint::kShardKill: return 0.0;      // fires by killing
    case FaultPoint::kShardRestart: return 0.0;   // fires by restarting
  }
  return 0.0;
}

}  // namespace

const char* fault_point_name(FaultPoint point) {
  switch (point) {
    case FaultPoint::kArtifactRead: return "artifact_read";
    case FaultPoint::kSweepCompute: return "sweep_compute";
    case FaultPoint::kWorkerStall: return "worker_stall";
    case FaultPoint::kCacheShard: return "cache_shard";
    case FaultPoint::kReportIngest: return "report_ingest";
    case FaultPoint::kRefitStall: return "refit_stall";
    case FaultPoint::kPromotionRace: return "promotion_race";
    case FaultPoint::kShardKill: return "shard_kill";
    case FaultPoint::kShardRestart: return "shard_restart";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultOptions options) : options_(options) {
  CCPRED_CHECK_MSG(options_.sweep_delay_ms >= 0.0 &&
                       options_.worker_stall_ms >= 0.0 &&
                       options_.cache_shard_hold_ms >= 0.0 &&
                       options_.report_ingest_ms >= 0.0 &&
                       options_.refit_stall_ms >= 0.0 &&
                       options_.promotion_race_ms >= 0.0,
                   "fault delays must be non-negative");
  enabled_ = options_.artifact_read_failure > 0.0 ||
             options_.sweep_delay > 0.0 || options_.worker_stall > 0.0 ||
             options_.cache_shard_hold > 0.0 || options_.report_ingest > 0.0 ||
             options_.refit_stall > 0.0 || options_.promotion_race > 0.0 ||
             options_.shard_kill > 0.0 || options_.shard_restart > 0.0;
}

double FaultInjector::probability(FaultPoint point) const {
  return point_probability(options_, point);
}

double FaultInjector::base_delay_ms(FaultPoint point) const {
  return point_base_delay_ms(options_, point);
}

double FaultInjector::unit_draw(std::uint64_t seed, FaultPoint point,
                                std::uint64_t arrival, std::uint64_t salt) {
  std::uint64_t h =
      mix64(seed + 0x632be59bd9b4e019ULL *
                       (static_cast<std::uint64_t>(index_of(point)) + 1));
  h = mix64(h ^ mix64(arrival));
  if (salt != 0) h = mix64(h ^ salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double FaultInjector::delay_for(const FaultOptions& options, FaultPoint point,
                                std::uint64_t arrival) {
  if (unit_draw(options.seed, point, arrival, 0) >=
      point_probability(options, point)) {
    return 0.0;
  }
  // Jitter in [0.5, 1.5) x base so contention patterns are not lockstep.
  const double jitter = 0.5 + unit_draw(options.seed, point, arrival, 1);
  return point_base_delay_ms(options, point) * jitter;
}

bool FaultInjector::fire(FaultPoint point) {
  if (!enabled_) return false;
  const int i = index_of(point);
  const std::uint64_t n =
      arrivals_[i].fetch_add(1, std::memory_order_relaxed);
  if (unit_draw(options_.seed, point, n, 0) >= probability(point)) {
    return false;
  }
  injected_[i].fetch_add(1, std::memory_order_relaxed);
  return true;
}

double FaultInjector::maybe_delay(FaultPoint point) {
  if (!enabled_) return 0.0;
  const int i = index_of(point);
  const std::uint64_t n =
      arrivals_[i].fetch_add(1, std::memory_order_relaxed);
  const double ms = delay_for(options_, point, n);
  if (ms <= 0.0) return 0.0;
  injected_[i].fetch_add(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  return ms;
}

std::uint64_t FaultInjector::arrivals(FaultPoint point) const {
  return arrivals_[index_of(point)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(FaultPoint point) const {
  return injected_[index_of(point)].load(std::memory_order_relaxed);
}

}  // namespace ccpred::serve
