#include "ccpred/core/kernel_ridge.hpp"

#include <algorithm>
#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/linalg/blas.hpp"
#include "ccpred/linalg/solve.hpp"

namespace ccpred::ml {

KernelRidgeRegression::KernelRidgeRegression(Kernel kernel, double alpha)
    : kernel_(kernel), alpha_(alpha) {
  CCPRED_CHECK_MSG(alpha > 0.0, "kernel ridge alpha must be > 0");
}

void KernelRidgeRegression::fit(const linalg::Matrix& x,
                                const std::vector<double>& y) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot fit on empty data");
  linalg::Matrix scaled = scaler_.fit_transform(x);
  // Grid search calls set_params + fit on the same rows over and over;
  // standardizing identical input reproduces x_train_ bit for bit, which
  // makes the cached squared-distance matrix (RBF Gram in O(n^2) exps
  // instead of a recomputation) safe to reuse across candidates.
  const bool same_x =
      fitted_ && scaled.rows() == x_train_.rows() &&
      scaled.cols() == x_train_.cols() &&
      std::equal(scaled.data(), scaled.data() + scaled.size(),
                 x_train_.data());
  x_train_ = std::move(scaled);
  const auto yz = y_scaler_.fit_transform(y);
  linalg::Matrix k;
  if (kernel_.type == KernelType::kRbf) {
    if (!same_x || dist2_.empty()) dist2_ = squared_distances(x_train_);
    k = rbf_from_squared_distances_symmetric(dist2_, kernel_.gamma);
  } else {
    dist2_ = linalg::Matrix();
    k = kernel_.gram_symmetric(x_train_);
  }
  k.add_diagonal(alpha_);
  // Keep the factorization instead of discarding it after one solve.
  chol_ = std::make_unique<linalg::Cholesky>(
      linalg::spd_factor_with_jitter(std::move(k)));
  dual_ = chol_->solve(yz);
  fitted_ = true;
}

std::vector<double> KernelRidgeRegression::predict(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(fitted_, "KernelRidgeRegression::predict before fit");
  const linalg::Matrix z = scaler_.transform(x);
  const linalg::Matrix k = kernel_.gram(z, x_train_);
  auto out = linalg::gemv(k, dual_);
  for (auto& v : out) v = y_scaler_.inverse_one(v);
  return out;
}

std::unique_ptr<Regressor> KernelRidgeRegression::clone() const {
  return std::make_unique<KernelRidgeRegression>(kernel_, alpha_);
}

const std::string& KernelRidgeRegression::name() const {
  static const std::string n = "KR";
  return n;
}

void KernelRidgeRegression::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "alpha") {
      CCPRED_CHECK_MSG(value > 0.0, "alpha must be > 0");
      alpha_ = value;
    } else if (key == "gamma") {
      CCPRED_CHECK_MSG(value > 0.0, "gamma must be > 0");
      kernel_.gamma = value;
    } else if (key == "kernel") {
      const int k = static_cast<int>(std::lround(value));
      CCPRED_CHECK_MSG(k >= 0 && k <= 2, "kernel code must be 0..2");
      kernel_.type = static_cast<KernelType>(k);
    } else if (key == "degree") {
      kernel_.degree = static_cast<int>(std::lround(value));
    } else if (key == "coef0") {
      kernel_.coef0 = value;
    } else {
      throw Error("KernelRidgeRegression: unknown parameter '" + key + "'");
    }
  }
}

}  // namespace ccpred::ml
