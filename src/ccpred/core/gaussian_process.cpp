#include "ccpred/core/gaussian_process.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "ccpred/common/error.hpp"
#include "ccpred/linalg/blas.hpp"

namespace ccpred::ml {

GaussianProcessRegression::GaussianProcessRegression(double gamma,
                                                     double noise,
                                                     bool optimize,
                                                     bool log_target,
                                                     bool log_features)
    : noise_(noise),
      optimize_(optimize),
      log_target_(log_target),
      log_features_(log_features) {
  CCPRED_CHECK_MSG(gamma > 0.0, "GP gamma must be > 0");
  CCPRED_CHECK_MSG(noise >= 0.0, "GP noise must be >= 0");
  kernel_.type = KernelType::kRbf;
  kernel_.gamma = gamma;
}

void GaussianProcessRegression::fit_with_gamma(double gamma) {
  kernel_.gamma = gamma;
  linalg::Matrix k = (engine_ == Engine::kFast && !dist2_.empty())
                         ? rbf_from_squared_distances_symmetric(dist2_, gamma)
                         : kernel_.gram_symmetric(x_train_);
  factor_and_score(std::move(k));
}

void GaussianProcessRegression::factor_and_score(linalg::Matrix k) {
  k.add_diagonal(noise_ + 1e-10);
  // Engine and Cholesky::Method are the same exec::EngineMode, so the GP's
  // mode selects the factorization path directly.
  chol_ = std::make_unique<linalg::Cholesky>(std::move(k), engine_);
  alpha_ = chol_->solve(yz_);
  // log p(y | X) = -1/2 y^T K^{-1} y - 1/2 log|K| - n/2 log(2 pi)
  const double n = static_cast<double>(yz_.size());
  lml_ = -0.5 * linalg::dot(yz_, alpha_) - 0.5 * chol_->log_determinant() -
         0.5 * n * std::log(2.0 * std::numbers::pi);
}

linalg::Matrix GaussianProcessRegression::maybe_log(
    const linalg::Matrix& x) const {
  if (!log_features_) return x;
  linalg::Matrix out = x;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      CCPRED_CHECK_MSG(out(i, c) > 0.0,
                       "log_features GP needs positive features");
      out(i, c) = std::log(out(i, c));
    }
  }
  return out;
}

void GaussianProcessRegression::fit(const linalg::Matrix& x,
                                    const std::vector<double>& y) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot fit on empty data");
  x_train_ = scaler_.fit_transform(maybe_log(x));
  if (log_target_) {
    std::vector<double> logged(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
      CCPRED_CHECK_MSG(y[i] > 0.0, "log_target GP needs positive targets");
      logged[i] = std::log(y[i]);
    }
    yz_ = y_scaler_.fit_transform(logged);
  } else {
    yz_ = y_scaler_.fit_transform(y);
  }

  // The fast engine computes the pairwise squared distances once: every
  // grid candidate's Gram matrix is then an elementwise exp(-gamma * D)
  // (noise only touches the diagonal) instead of a full recomputation.
  dist2_ = engine_ == Engine::kFast ? squared_distances(x_train_)
                                    : linalg::Matrix();

  if (!optimize_) {
    fit_with_gamma(kernel_.gamma);
    return;
  }
  // Type-II maximum likelihood over a log-spaced (gamma, noise) grid:
  // robust, derivative-free, and each candidate is one O(n^3)
  // factorization — the same cost the final fit pays anyway.
  const double gamma_candidates[] = {0.03, 0.1, 0.3, 1.0, 3.0};
  const double noise_candidates[] = {1e-3, 1e-2, 1e-1};
  double best_gamma = kernel_.gamma;
  double best_noise = noise_;
  double best_lml = -std::numeric_limits<double>::infinity();
  if (engine_ == Engine::kFast) {
    // Gamma-major order: one exp map serves all noise levels of a gamma.
    // The winning candidate's factorization is kept, so the final fit is a
    // restore instead of a 16th O(n^3) factorization (the factorization is
    // deterministic, so this is bitwise identical to recomputing it).
    std::unique_ptr<linalg::Cholesky> best_chol;
    std::vector<double> best_alpha;
    for (double g : gamma_candidates) {
      const linalg::Matrix kg = rbf_from_squared_distances_symmetric(dist2_, g);
      kernel_.gamma = g;
      for (double nz : noise_candidates) {
        noise_ = nz;
        factor_and_score(kg);
        if (lml_ > best_lml) {
          best_lml = lml_;
          best_gamma = g;
          best_noise = nz;
          best_chol = std::move(chol_);
          best_alpha = std::move(alpha_);
        }
      }
    }
    kernel_.gamma = best_gamma;
    noise_ = best_noise;
    chol_ = std::move(best_chol);
    alpha_ = std::move(best_alpha);
    lml_ = best_lml;
  } else {
    for (double nz : noise_candidates) {
      noise_ = nz;
      for (double g : gamma_candidates) {
        fit_with_gamma(g);
        if (lml_ > best_lml) {
          best_lml = lml_;
          best_gamma = g;
          best_noise = nz;
        }
      }
    }
    noise_ = best_noise;
    fit_with_gamma(best_gamma);
  }
}

std::vector<double> GaussianProcessRegression::predict(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(is_fitted(), "GaussianProcessRegression::predict before fit");
  const linalg::Matrix z = scaler_.transform(maybe_log(x));
  const linalg::Matrix ks = kernel_.gram(z, x_train_);
  auto out = linalg::gemv(ks, alpha_);
  for (auto& v : out) {
    v = y_scaler_.inverse_one(v);
    if (log_target_) v = std::exp(v);
  }
  return out;
}

void GaussianProcessRegression::predict_with_std(const linalg::Matrix& x,
                                                 std::vector<double>& mean,
                                                 std::vector<double>& std) const {
  CCPRED_CHECK_MSG(is_fitted(), "GP predict_with_std before fit");
  const linalg::Matrix z = scaler_.transform(maybe_log(x));
  const std::size_t m = x.rows();
  std.assign(m, 0.0);
  // var(x*) = k(x*,x*) - k*^T K^{-1} k*; k(x,x) = 1 for RBF.
  if (engine_ == Engine::kFast) {
    // All variances from ONE multi-RHS triangular solve of K*^T plus
    // column squared-norms, instead of a serial per-row solve_lower loop.
    const linalg::Matrix ks_t = kernel_.gram(x_train_, z);  // n x m
    mean = linalg::gemv_transposed(ks_t, alpha_);
    const linalg::Matrix v = chol_->solve_lower(ks_t);
    for (std::size_t r = 0; r < v.rows(); ++r) {
      const double* vr = v.row_ptr(r);
      for (std::size_t j = 0; j < m; ++j) std[j] += vr[j] * vr[j];
    }
    for (std::size_t j = 0; j < m; ++j) {
      std[j] = std::max(0.0, 1.0 + noise_ - std[j]);
    }
  } else {
    const linalg::Matrix ks = kernel_.gram(z, x_train_);
    mean = linalg::gemv(ks, alpha_);
    for (std::size_t i = 0; i < m; ++i) {
      const auto v = chol_->solve_lower(ks.row(i));
      double quad = 0.0;
      for (double w : v) quad += w * w;
      std[i] = std::max(0.0, 1.0 + noise_ - quad);
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    std[i] = std::sqrt(std[i]) * y_scaler_.stddev();
    mean[i] = y_scaler_.inverse_one(mean[i]);
    if (log_target_) {
      // Delta method back to seconds: y = exp(f), std_y ~ exp(mu) std_f.
      mean[i] = std::exp(mean[i]);
      std[i] *= mean[i];
    }
  }
}

void GaussianProcessRegression::update(const linalg::Matrix& x_new,
                                       const std::vector<double>& y_new) {
  CCPRED_CHECK_MSG(is_fitted(), "GaussianProcessRegression::update before fit");
  CCPRED_CHECK_MSG(x_new.rows() == y_new.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(x_new.rows() > 0, "update needs at least one new row");
  // Frozen scalers: the standardization learned at the last full fit keeps
  // the cached distances and factor valid. The drift it ignores is absorbed
  // by the active-learning loop's cadence of full refits.
  const linalg::Matrix z = scaler_.transform(maybe_log(x_new));
  std::vector<double> yz_new;
  if (log_target_) {
    std::vector<double> logged(y_new.size());
    for (std::size_t i = 0; i < y_new.size(); ++i) {
      CCPRED_CHECK_MSG(y_new[i] > 0.0, "log_target GP needs positive targets");
      logged[i] = std::log(y_new[i]);
    }
    yz_new = y_scaler_.transform(logged);
  } else {
    yz_new = y_scaler_.transform(y_new);
  }

  const linalg::Matrix cross_d = squared_distances(z, x_train_);
  const linalg::Matrix self_d = squared_distances(z);
  const linalg::Matrix k21 = rbf_from_squared_distances(cross_d, kernel_.gamma);
  linalg::Matrix k22 =
      rbf_from_squared_distances_symmetric(self_d, kernel_.gamma);
  k22.add_diagonal(noise_ + 1e-10);
  // O(n^2 q) rank-q append instead of an O(n^3) refactorization.
  chol_->extend(k21, k22);

  if (!dist2_.empty()) {
    // Keep the cached distance matrix in sync with the grown factor.
    const std::size_t n = dist2_.rows();
    const std::size_t q = z.rows();
    linalg::Matrix d2(n + q, n + q);
    for (std::size_t i = 0; i < n; ++i) {
      const double* src = dist2_.row_ptr(i);
      std::copy(src, src + n, d2.row_ptr(i));
    }
    for (std::size_t r = 0; r < q; ++r) {
      const double* cr = cross_d.row_ptr(r);
      double* dr = d2.row_ptr(n + r);
      for (std::size_t j = 0; j < n; ++j) {
        dr[j] = cr[j];
        d2(j, n + r) = cr[j];
      }
      for (std::size_t c = 0; c < q; ++c) dr[n + c] = self_d(r, c);
    }
    dist2_ = std::move(d2);
  }
  x_train_.append_rows(z);
  yz_.insert(yz_.end(), yz_new.begin(), yz_new.end());
  alpha_ = chol_->solve(yz_);
  const double n_total = static_cast<double>(yz_.size());
  lml_ = -0.5 * linalg::dot(yz_, alpha_) - 0.5 * chol_->log_determinant() -
         0.5 * n_total * std::log(2.0 * std::numbers::pi);
}

std::unique_ptr<Regressor> GaussianProcessRegression::clone() const {
  auto copy = std::make_unique<GaussianProcessRegression>(
      kernel_.gamma, noise_, optimize_, log_target_, log_features_);
  copy->engine_ = engine_;
  return copy;
}

const std::string& GaussianProcessRegression::name() const {
  static const std::string n = "GP";
  return n;
}

void GaussianProcessRegression::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "gamma") {
      CCPRED_CHECK_MSG(value > 0.0, "gamma must be > 0");
      kernel_.gamma = value;
    } else if (key == "noise") {
      CCPRED_CHECK_MSG(value >= 0.0, "noise must be >= 0");
      noise_ = value;
    } else if (key == "optimize") {
      optimize_ = value != 0.0;
    } else if (key == "log_target") {
      log_target_ = value != 0.0;
    } else if (key == "log_features") {
      log_features_ = value != 0.0;
    } else if (key == "engine") {
      CCPRED_CHECK_MSG(value == 0.0 || value == 1.0,
                       "engine must be 0 (fast) or 1 (reference)");
      engine_ = value == 0.0 ? Engine::kFast : Engine::kReference;
    } else {
      throw Error("GaussianProcessRegression: unknown parameter '" + key +
                  "'");
    }
  }
}

}  // namespace ccpred::ml
