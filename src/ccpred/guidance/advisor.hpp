#pragma once

/// \file advisor.hpp
/// The user-facing question answerer (§3.3): given a trained runtime model
/// and a problem size (O, V), sweep candidate (nodes, tile) configurations,
/// predict each, and recommend the argmin under the requested objective —
/// exactly the iterative-querying procedure the paper describes.

#include <memory>
#include <utility>
#include <vector>

#include "ccpred/core/regressor.hpp"
#include "ccpred/guidance/optimal.hpp"
#include "ccpred/sim/ccsd_simulator.hpp"

namespace ccpred::guide {

/// One swept candidate with its prediction.
struct SweepPoint {
  sim::RunConfig config;
  double predicted_time_s = 0.0;
  double predicted_node_hours = 0.0;
};

/// The (time, node-hours) Pareto frontier of a sweep: configurations not
/// dominated in both predicted time and predicted cost, sorted by
/// ascending predicted time. Everything a user should consider lies here.
std::vector<SweepPoint> pareto_front(const std::vector<SweepPoint>& sweep);

/// A recommendation for one user question.
struct Recommendation {
  sim::RunConfig config;          ///< recommended (O, V, nodes, tile)
  double predicted_time_s = 0.0;
  double predicted_node_hours = 0.0;
  Objective objective = Objective::kShortestTime;
  std::vector<SweepPoint> sweep;  ///< the full swept grid, for inspection
};

/// Answers STQ/BQ queries by sweeping a trained model over candidate
/// configurations.
class Advisor {
 public:
  /// `model` must already be fitted on <O, V, nodes, tile> -> time rows.
  /// `simulator` supplies the candidate node/tile menus and feasibility
  /// (its machine model only — no oracle times are consulted).
  Advisor(const ml::Regressor& model, const sim::CcsdSimulator& simulator);

  /// Recommends the configuration minimizing the objective for (o, v).
  /// Sweeps the machine's node menu clipped to memory feasibility and the
  /// full tile menu.
  Recommendation recommend(int o, int v, Objective objective) const;

  /// Batched recommend(): concatenates every problem's candidate grid into
  /// ONE feature matrix and runs ONE model predict over it, so the wide
  /// batch kernels see cross-request batches instead of per-request ones.
  /// Row predictions are independent of their neighbours, so each returned
  /// Recommendation is bit-identical to recommend(o, v, objective) — the
  /// serving layer's batch lane relies on this. Throws (like recommend)
  /// if any problem has no feasible configuration.
  std::vector<Recommendation> recommend_batch(
      const std::vector<std::pair<int, int>>& problems,
      Objective objective) const;

  /// Shortest-time question.
  Recommendation shortest_time(int o, int v) const {
    return recommend(o, v, Objective::kShortestTime);
  }

  /// Budget question (minimum node-hours).
  Recommendation cheapest_run(int o, int v) const {
    return recommend(o, v, Objective::kNodeHours);
  }

  /// Constrained question: the fastest predicted configuration whose
  /// predicted cost stays within `max_node_hours`. Throws ccpred::Error if
  /// no feasible configuration fits the budget (the cheapest_run answer
  /// tells the user the minimum budget needed). Delegates to the sweep
  /// overload below after one recommend() sweep.
  Recommendation fastest_within_budget(int o, int v,
                                       double max_node_hours) const;

  /// Same question answered from an already-computed sweep (any objective):
  /// no model predictions are re-run, so callers holding a cached
  /// Recommendation (e.g. the serving layer) answer budget queries for
  /// free. Throws ccpred::Error if nothing fits the budget or if the sweep
  /// carries non-finite predictions.
  static Recommendation fastest_within_budget(const Recommendation& base,
                                              double max_node_hours);

  /// Re-derives the argmin for `objective` from an existing sweep without
  /// re-predicting — the sweep is objective-independent, only the winner
  /// changes. Throws ccpred::Error on an empty sweep or on any non-finite
  /// (NaN/Inf) predicted time or cost.
  static Recommendation from_sweep(std::vector<SweepPoint> sweep,
                                   Objective objective);

  /// The argmin point from_sweep would pick, without materializing a
  /// Recommendation (and so without copying the swept grid). Same
  /// validation and tie-breaking as from_sweep; the serving layer's batch
  /// lane uses this to answer BQ members straight off a cached sweep.
  static const SweepPoint& pick_best(const std::vector<SweepPoint>& sweep,
                                     Objective objective);

  /// The point fastest_within_budget would pick from `base`, without
  /// copying the grid. Same validation and error text.
  static const SweepPoint& pick_within_budget(const Recommendation& base,
                                              double max_node_hours);

 private:
  const ml::Regressor& model_;
  const sim::CcsdSimulator& simulator_;
};

}  // namespace ccpred::guide
