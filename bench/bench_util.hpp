#pragma once

/// \file bench_util.hpp
/// Shared setup for the reproduction benches: each binary regenerates the
/// paper's dataset for one machine, applies the paper's train/test split
/// (Table 1 sizes) and reports through the common table formatter.
///
/// Environment: set CCPRED_BENCH_FAST=1 to shrink the workloads (smaller
/// datasets, fewer search iterations) for quick smoke runs.

#include <string>

#include "ccpred/data/generator.hpp"
#include "ccpred/data/split.hpp"
#include "ccpred/sim/ccsd_simulator.hpp"

namespace ccpred::bench {

/// True when CCPRED_BENCH_FAST is set to a non-empty, non-"0" value.
bool fast_mode();

/// Simulator for "aurora" or "frontier".
sim::CcsdSimulator make_simulator(const std::string& machine);

/// The paper's campaign for one machine, already split 75/25 with
/// configuration coverage (Table 1 sizes: aurora 1746/583, frontier
/// 1840/614). In fast mode the dataset is ~4x smaller unless `full_rows`
/// is set — speedup-ratio gates calibrated at full campaign size should
/// pass `full_rows = true` so fast mode does not shift the ratio they
/// measure (histogram-vs-exact fit cost is not scale-free in n).
struct PaperData {
  sim::CcsdSimulator simulator;
  data::Dataset full;
  data::TrainTest split;
};

PaperData load_paper_data(const std::string& machine,
                          std::uint64_t seed = 2025, bool full_rows = false);

/// One-line JSON object fragment recording where a bench number came from:
/// detected CPU features (avx2/fma), the SIMD dispatch mode the run
/// resolved to (including any CCPRED_SIMD override), and the git revision
/// the binary was configured from. Every BENCH_*.json writer embeds this
/// under a "provenance" key so archived numbers stay comparable across
/// hosts and dispatch modes.
std::string provenance_json();

}  // namespace ccpred::bench
