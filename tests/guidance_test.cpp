// Tests for the guidance engine: optimal-configuration extraction,
// true-loss semantics (§3.4), the advisor and table formatting.

#include <gtest/gtest.h>

#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/guidance/advisor.hpp"
#include "ccpred/guidance/optimal.hpp"
#include "ccpred/guidance/report.hpp"
#include "test_util.hpp"

namespace ccpred::guide {
namespace {

/// Two problems, two configurations each, hand-built so the optima are
/// known: for (10,100) config A (4 nodes, 100 s) vs B (8 nodes, 60 s) —
/// STQ picks B, BQ picks A (0.111 vs 0.133 node-hours).
data::Dataset handmade() {
  data::Dataset d;
  d.add({10, 100, 4, 40}, 100.0);  // row 0: NH = 0.1111
  d.add({10, 100, 8, 40}, 60.0);   // row 1: NH = 0.1333
  d.add({20, 200, 4, 50}, 300.0);  // row 2: NH = 0.3333
  d.add({20, 200, 16, 50}, 100.0); // row 3: NH = 0.4444
  return d;
}

TEST(ObjectiveTest, ValuesComputedCorrectly) {
  const auto d = handmade();
  EXPECT_DOUBLE_EQ(
      objective_value(d, d.targets(), 0, Objective::kShortestTime), 100.0);
  EXPECT_NEAR(objective_value(d, d.targets(), 0, Objective::kNodeHours),
              4.0 * 100.0 / 3600.0, 1e-12);
}

TEST(OptimalTest, StqPicksShortestPerProblem) {
  const auto d = handmade();
  const auto opt = get_optimal_values(d, d.targets(),
                                      Objective::kShortestTime);
  ASSERT_EQ(opt.size(), 2u);
  EXPECT_EQ(opt[0].row, 1u);  // (10,100): 60 s wins
  EXPECT_EQ(opt[1].row, 3u);  // (20,200): 100 s wins
  EXPECT_EQ(opt[0].config.nodes, 8);
}

TEST(OptimalTest, BqPicksCheapestPerProblem) {
  const auto d = handmade();
  const auto opt = get_optimal_values(d, d.targets(), Objective::kNodeHours);
  EXPECT_EQ(opt[0].row, 0u);  // 0.111 < 0.133
  EXPECT_EQ(opt[1].row, 2u);  // 0.333 < 0.444
}

TEST(OptimalTest, PredictionsCanFlipTheChoice) {
  const auto d = handmade();
  // Model thinks row 0 is faster than row 1.
  const std::vector<double> y_pred = {50.0, 60.0, 300.0, 100.0};
  const auto opt = get_optimal_values(d, y_pred, Objective::kShortestTime);
  EXPECT_EQ(opt[0].row, 0u);
}

TEST(TrueLossTest, RealizedValueUsesTrueTargetAtPredictedConfig) {
  const auto d = handmade();
  // The paper's §3.4 caveat: model predicts row 0 takes 50 s (wrongly);
  // the STQ loss must be computed at row 0's TRUE time (100 s), not 50 s.
  const std::vector<double> y_pred = {50.0, 60.0, 300.0, 100.0};
  const auto outcomes = evaluate_optima(d, y_pred, Objective::kShortestTime);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].config_match);
  EXPECT_DOUBLE_EQ(outcomes[0].true_value, 60.0);
  EXPECT_DOUBLE_EQ(outcomes[0].realized_value, 100.0);  // not 50!
  EXPECT_TRUE(outcomes[1].config_match);
  EXPECT_DOUBLE_EQ(outcomes[1].realized_value, outcomes[1].true_value);
}

TEST(TrueLossTest, RealizedNeverBeatsTrueOptimum) {
  // Whatever the model predicts, the realized objective is >= the true
  // optimum (the optimum is the min over the same rows).
  const auto d = handmade();
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> y_pred(d.size());
    for (auto& v : y_pred) v = rng.uniform(1.0, 500.0);
    for (auto obj : {Objective::kShortestTime, Objective::kNodeHours}) {
      for (const auto& po : evaluate_optima(d, y_pred, obj)) {
        EXPECT_GE(po.realized_value, po.true_value - 1e-12);
      }
    }
  }
}

TEST(TrueLossTest, ComputeLossesPerfectWhenAllMatch) {
  const auto d = handmade();
  const auto outcomes =
      evaluate_optima(d, d.targets(), Objective::kShortestTime);
  const auto losses = compute_losses(outcomes);
  EXPECT_DOUBLE_EQ(losses.mae, 0.0);
  EXPECT_DOUBLE_EQ(losses.mape, 0.0);
  EXPECT_DOUBLE_EQ(losses.r2, 1.0);
}

TEST(OptimalTest, TiesBreakToLowestNodesThenSmallestTile) {
  // Four configs of one problem with IDENTICAL times: the argmin must be
  // deterministic — lowest nodes first, then smallest tile — regardless of
  // row order.
  data::Dataset d;
  d.add({10, 100, 8, 50}, 60.0);   // row 0
  d.add({10, 100, 8, 40}, 60.0);   // row 1: same nodes, smaller tile
  d.add({10, 100, 4, 50}, 60.0);   // row 2: lower nodes
  d.add({10, 100, 4, 40}, 60.0);   // row 3: lower nodes, smaller tile
  const auto stq = get_optimal_values(d, d.targets(),
                                      Objective::kShortestTime);
  ASSERT_EQ(stq.size(), 1u);
  EXPECT_EQ(stq[0].row, 3u);
  EXPECT_EQ(stq[0].config.nodes, 4);
  EXPECT_EQ(stq[0].config.tile, 40);
  // Restrict to the 8-node rows: the tile decides.
  const auto sub = d.select({0, 1});
  const auto sub_opt = get_optimal_values(sub, sub.targets(),
                                          Objective::kShortestTime);
  EXPECT_EQ(sub_opt[0].config.tile, 40);
}

TEST(OptimalTest, SweepReturnsFullSurfaceAndMatchingArgmin) {
  const auto d = handmade();
  for (auto obj : {Objective::kShortestTime, Objective::kNodeHours}) {
    const auto sweeps = sweep_optimal_values(d, d.targets(), obj);
    const auto argmins = get_optimal_values(d, d.targets(), obj);
    ASSERT_EQ(sweeps.size(), argmins.size());
    std::size_t total_rows = 0;
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
      ASSERT_EQ(sweeps[i].rows.size(), sweeps[i].values.size());
      total_rows += sweeps[i].rows.size();
      EXPECT_EQ(sweeps[i].best.row, argmins[i].row);
      EXPECT_DOUBLE_EQ(sweeps[i].best.value, argmins[i].value);
      for (std::size_t j = 0; j < sweeps[i].rows.size(); ++j) {
        EXPECT_DOUBLE_EQ(
            sweeps[i].values[j],
            objective_value(d, d.targets(), sweeps[i].rows[j], obj));
        EXPECT_LE(sweeps[i].best.value, sweeps[i].values[j]);
      }
    }
    EXPECT_EQ(total_rows, d.size());
  }
}

TEST(TrueLossTest, PrecomputedSweepOverloadMatchesDirectEvaluation) {
  const auto d = handmade();
  const std::vector<double> y_pred = {50.0, 60.0, 300.0, 100.0};
  for (auto obj : {Objective::kShortestTime, Objective::kNodeHours}) {
    const auto direct = evaluate_optima(d, y_pred, obj);
    const auto sweeps = sweep_optimal_values(d, d.targets(), obj);
    const auto reused = evaluate_optima(d, y_pred, obj, sweeps);
    ASSERT_EQ(direct.size(), reused.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(direct[i].truth.row, reused[i].truth.row);
      EXPECT_EQ(direct[i].predicted.row, reused[i].predicted.row);
      EXPECT_DOUBLE_EQ(direct[i].realized_value, reused[i].realized_value);
      EXPECT_EQ(direct[i].config_match, reused[i].config_match);
    }
  }
}

TEST(TrueLossTest, SizeMismatchThrows) {
  const auto d = handmade();
  EXPECT_THROW(get_optimal_values(d, {1.0}, Objective::kShortestTime), Error);
  EXPECT_THROW(compute_losses({}), Error);
}

// ---------- advisor ----------

class AdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tt_ = test::small_campaign(500);
    model_ = ml::make_paper_gb();
    model_->set_params({{"n_estimators", 150.0}});
    model_->fit(tt_->train.features(), tt_->train.targets());
  }
  std::optional<data::TrainTest> tt_;
  std::unique_ptr<ml::Regressor> model_;
  sim::CcsdSimulator simulator_{sim::MachineModel::aurora()};
};

TEST_F(AdvisorTest, RequiresFittedModel) {
  const auto unfitted = ml::make_model("DT");
  EXPECT_THROW(Advisor(*unfitted, simulator_), Error);
}

TEST_F(AdvisorTest, RecommendationsAreFeasible) {
  const Advisor advisor(*model_, simulator_);
  for (auto obj : {Objective::kShortestTime, Objective::kNodeHours}) {
    const auto rec = advisor.recommend(134, 951, obj);
    EXPECT_TRUE(simulator_.feasible(rec.config));
    EXPECT_EQ(rec.config.o, 134);
    EXPECT_EQ(rec.config.v, 951);
    EXPECT_GT(rec.predicted_time_s, 0.0);
    EXPECT_FALSE(rec.sweep.empty());
  }
}

TEST_F(AdvisorTest, RecommendationMinimizesOverItsOwnSweep) {
  const Advisor advisor(*model_, simulator_);
  const auto stq = advisor.shortest_time(134, 951);
  for (const auto& pt : stq.sweep) {
    EXPECT_GE(pt.predicted_time_s, stq.predicted_time_s - 1e-9);
  }
  const auto bq = advisor.cheapest_run(134, 951);
  for (const auto& pt : bq.sweep) {
    EXPECT_GE(pt.predicted_node_hours, bq.predicted_node_hours - 1e-9);
  }
}

TEST_F(AdvisorTest, StqUsesMoreNodesThanBq) {
  // Tables 3 vs 5: minimizing time picks many nodes, minimizing budget few.
  const Advisor advisor(*model_, simulator_);
  const auto stq = advisor.shortest_time(134, 951);
  const auto bq = advisor.cheapest_run(134, 951);
  EXPECT_GT(stq.config.nodes, bq.config.nodes);
}

TEST_F(AdvisorTest, InvalidProblemThrows) {
  const Advisor advisor(*model_, simulator_);
  EXPECT_THROW(advisor.shortest_time(0, 100), Error);
}

TEST_F(AdvisorTest, RecommendBatchMatchesPerProblemExactly) {
  // The batch lane's one-predict-over-concatenated-grids path must be
  // bit-identical to per-problem recommend() — row predictions are
  // independent, so batching may never change an answer.
  const Advisor advisor(*model_, simulator_);
  const std::vector<std::pair<int, int>> problems = {
      {44, 260}, {85, 698}, {134, 951}, {85, 698}};  // incl. a repeat
  for (auto obj : {Objective::kShortestTime, Objective::kNodeHours}) {
    const auto batch = advisor.recommend_batch(problems, obj);
    ASSERT_EQ(batch.size(), problems.size());
    for (std::size_t i = 0; i < problems.size(); ++i) {
      const auto single =
          advisor.recommend(problems[i].first, problems[i].second, obj);
      EXPECT_EQ(batch[i].config.nodes, single.config.nodes) << i;
      EXPECT_EQ(batch[i].config.tile, single.config.tile) << i;
      EXPECT_EQ(batch[i].predicted_time_s, single.predicted_time_s) << i;
      EXPECT_EQ(batch[i].predicted_node_hours, single.predicted_node_hours)
          << i;
      ASSERT_EQ(batch[i].sweep.size(), single.sweep.size()) << i;
      for (std::size_t k = 0; k < single.sweep.size(); ++k) {
        EXPECT_EQ(batch[i].sweep[k].predicted_time_s,
                  single.sweep[k].predicted_time_s)
            << i << "/" << k;
      }
    }
  }
  EXPECT_TRUE(
      advisor.recommend_batch({}, Objective::kShortestTime).empty());
  // An infeasible problem anywhere throws, exactly like the serial path.
  EXPECT_THROW(advisor.recommend_batch({{44, 260}, {0, 100}},
                                       Objective::kShortestTime),
               Error);
}

// ---------- report ----------

TEST(ReportTest, ParenNotation) {
  EXPECT_EQ(paren_cell(110, 90, false), "110(90)");
  EXPECT_EQ(paren_cell(110, 110, true), "110");
  EXPECT_EQ(paren_cell(38.35, 38.78, false, 2), "38.35(38.78)");
  EXPECT_EQ(paren_cell(38.35, 38.35, true, 2), "38.35");
}

TEST(ReportTest, StqTableShape) {
  const auto d = handmade();
  const std::vector<double> y_pred = {50.0, 60.0, 300.0, 100.0};
  const auto outcomes = evaluate_optima(d, y_pred, Objective::kShortestTime);
  const auto table = format_stq_table(outcomes, "t");
  EXPECT_EQ(table.num_rows(), 2u);
  const auto s = table.str();
  EXPECT_NE(s.find("Runtime (s)"), std::string::npos);
  EXPECT_NE(s.find("("), std::string::npos);  // the mismatch row
  EXPECT_EQ(mismatch_count(outcomes), 1u);
}

TEST(ReportTest, BqTableHasNodeHours) {
  const auto d = handmade();
  const auto outcomes =
      evaluate_optima(d, d.targets(), Objective::kNodeHours);
  const auto s = format_bq_table(outcomes, "t").str();
  EXPECT_NE(s.find("Node Hours"), std::string::npos);
  EXPECT_EQ(mismatch_count(outcomes), 0u);
}

}  // namespace
}  // namespace ccpred::guide
