#pragma once

/// \file random_search.hpp
/// Randomized hyper-parameter search: n_iter assignments sampled from a
/// continuous ParamSpace, each scored by k-fold CV.

#include "ccpred/core/grid_search.hpp"

namespace ccpred::ml {

/// Samples `n_iter` candidates from `space` (deterministic in
/// options.seed) and evaluates them with CV.
SearchResult random_search(const Regressor& prototype, const ParamSpace& space,
                           int n_iter, const linalg::Matrix& x,
                           const std::vector<double>& y,
                           const SearchOptions& options = {});

}  // namespace ccpred::ml
