// Fuzz-style property tests for the line-JSON protocol boundary. The
// serving daemon feeds every network line through parse_request, so the
// parser must never crash, never throw anything but ccpred::Error, and the
// error path must always produce a well-formed ok=false response line.
// All inputs are generated from a seeded Rng: a failure reproduces
// bit-for-bit from the seed printed in the assertion message.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ccpred/common/error.hpp"
#include "ccpred/common/rng.hpp"
#include "ccpred/serve/protocol.hpp"

namespace ccpred::serve {
namespace {

/// Feeds one line through the parse boundary the way the daemon does.
/// Returns true if it parsed; throws only ccpred::Error by contract.
bool survives_boundary(const std::string& line) {
  try {
    (void)parse_request(line);
    return true;
  } catch (const Error&) {
    // The daemon's error path: the message must format into a response
    // line that parses back as a flat record with ok=false.
    const Response err = error_response("rejected: fuzz input");
    const auto rec = parse_record(format_response(err));
    EXPECT_EQ(rec.at("ok"), "false");
    return false;
  }
  // Anything else (std::bad_alloc aside) escapes and fails the test.
}

std::string random_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t len =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(max_len)));
  std::string s(len, '\0');
  for (char& c : s) {
    // Full byte range except '\n' (the daemon splits on newlines before
    // parsing, so a line never contains one).
    c = static_cast<char>(rng.uniform_int(0, 255));
    if (c == '\n') c = ' ';
  }
  return s;
}

std::string valid_request_line(Rng& rng) {
  switch (rng.uniform_int(0, 6)) {
    case 0: return R"({"op":"stq","o":134,"v":951})";
    case 1: return R"({"op":"bq","o":85,"v":698,"machine":"aurora"})";
    case 2: return R"({"op":"budget","o":44,"v":260,"max_node_hours":3.5})";
    case 3: return R"({"op":"job","o":99,"v":718,"nodes":64,"tile":80})";
    case 4:
      return R"({"op":"report","o":99,"v":718,"nodes":64,"tile":80,)"
             R"("wall_time_s":123.4})";
    case 5:
      return R"({"op":"report","o":44,"v":260,"nodes":16,"tile":60,)"
             R"("wall_times":"1.5,2.25,3"})";
    default: return R"({"op":"stats","id":"fz","deadline_ms":250})";
  }
}

TEST(ProtocolFuzzTest, RandomBytesNeverEscapeTheBoundary) {
  Rng rng(20250805);
  for (int i = 0; i < 4000; ++i) {
    const std::string line = random_bytes(rng, 160);
    SCOPED_TRACE("iteration " + std::to_string(i));
    (void)survives_boundary(line);  // any ccpred::Error is acceptable
  }
}

TEST(ProtocolFuzzTest, TruncationsOfValidLinesNeverEscape) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::string line = valid_request_line(rng);
    for (std::size_t cut = 0; cut <= line.size(); ++cut) {
      SCOPED_TRACE("iteration " + std::to_string(i) + " cut " +
                   std::to_string(cut));
      const bool parsed = survives_boundary(line.substr(0, cut));
      if (cut == line.size()) EXPECT_TRUE(parsed);
    }
  }
}

TEST(ProtocolFuzzTest, MutatedValidLinesNeverEscape) {
  Rng rng(42);
  for (int i = 0; i < 4000; ++i) {
    std::string line = valid_request_line(rng);
    const int edits = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < edits; ++e) {
      if (line.empty()) line = "{";
      const std::size_t pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(line.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:  // overwrite with a random byte
          line[pos] = static_cast<char>(rng.uniform_int(1, 255));
          if (line[pos] == '\n') line[pos] = '{';
          break;
        case 1:  // delete one byte
          line.erase(pos, 1);
          break;
        default:  // duplicate one byte
          line.insert(pos, 1, line[pos]);
      }
    }
    if (line.empty()) line = "{";
    SCOPED_TRACE("iteration " + std::to_string(i) + " line " + line);
    (void)survives_boundary(line);
  }
}

TEST(ProtocolFuzzTest, OversizedFieldsAreRejectedNotFatal) {
  // Huge numbers must come back as Error (from_chars out-of-range), not
  // wrap, crash, or parse to garbage.
  EXPECT_THROW(parse_request(R"({"op":"stq","o":999999999999999999999,"v":2})"),
               Error);
  EXPECT_THROW(parse_request(R"({"op":"stq","o":1,"v":2,"deadline_ms":1e99})"),
               Error);
  EXPECT_THROW(
      parse_request(
          R"({"op":"budget","o":1,"v":2,"max_node_hours":1e999999})"),
      Error);
  const std::string long_digits(5000, '7');
  EXPECT_THROW(
      parse_request(R"({"op":"stq","o":)" + long_digits + R"(,"v":2})"),
      Error);

  // Oversized string fields are carried through, not truncated or fatal:
  // unknown machines fail later, at the registry, with a clean Error.
  const std::string big_id(1 << 16, 'x');
  const auto req =
      parse_request(R"({"op":"stq","o":1,"v":2,"id":")" + big_id + R"("})");
  EXPECT_EQ(req.id.size(), big_id.size());

  // Nesting is explicitly unsupported and must throw, not recurse.
  std::string nested = R"({"a":)";
  for (int i = 0; i < 2000; ++i) nested += '{';
  EXPECT_THROW(parse_record(nested), Error);
}

TEST(ProtocolFuzzTest, ReportWallTimesNeverEscapeTheBoundary) {
  // Happy paths first: single measurement and a comma-separated batch.
  const auto single = parse_request(
      R"({"op":"report","o":99,"v":718,"nodes":64,"tile":80,)"
      R"("wall_time_s":123.4})");
  ASSERT_EQ(single.wall_times.size(), 1u);
  EXPECT_DOUBLE_EQ(single.wall_times[0], 123.4);
  const auto batch = parse_request(
      R"({"op":"report","o":99,"v":718,"nodes":64,"tile":80,)"
      R"("wall_times":"1.5,2.25,3"})");
  ASSERT_EQ(batch.wall_times.size(), 3u);
  EXPECT_DOUBLE_EQ(batch.wall_times[1], 2.25);

  // std::from_chars happily parses "nan" and "inf" — the boundary must
  // reject them (and every other non-finite / non-positive value) with a
  // clean Error, never letting them reach the learner.
  const auto with_wall = [](const std::string& value) {
    return R"({"op":"report","o":99,"v":718,"nodes":64,"tile":80,)"
           R"("wall_time_s":)" +
           value + "}";
  };
  for (const char* bad :
       {"nan", "inf", "-inf", "NaN", "Infinity", "-1.5", "0", "0.0", "1e999",
        "\"nan\"", "\"\"", "1.2.3", "true"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW((void)parse_request(with_wall(bad)), Error);
  }

  // Batch entries are validated individually; empty entries are malformed.
  const auto with_batch = [](const std::string& list) {
    return R"({"op":"report","o":99,"v":718,"nodes":64,"tile":80,)"
           R"("wall_times":")" +
           list + R"("})";
  };
  for (const char* bad : {"1.0,nan,2.0", "1.0,inf", "1.0,,2.0", ",1.0",
                          "1.0,", "", "1.0,-2.0"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW((void)parse_request(with_batch(bad)), Error);
  }

  // Oversized batches are rejected at the boundary, not buffered.
  std::string big;
  for (int i = 0; i < 65; ++i) big += (i ? ",1.5" : "1.5");
  EXPECT_THROW((void)parse_request(with_batch(big)), Error);
  std::string at_cap;
  for (int i = 0; i < 64; ++i) at_cap += (i ? ",1.5" : "1.5");
  EXPECT_EQ(parse_request(with_batch(at_cap)).wall_times.size(), 64u);

  // Exactly one measurement field, and positive dimensions.
  EXPECT_THROW(
      (void)parse_request(
          R"({"op":"report","o":9,"v":7,"nodes":6,"tile":8,)"
          R"("wall_time_s":1.0,"wall_times":"2.0"})"),
      Error);
  EXPECT_THROW((void)parse_request(
                   R"({"op":"report","o":9,"v":7,"nodes":6,"tile":8})"),
               Error);
  EXPECT_THROW(
      (void)parse_request(
          R"({"op":"report","o":0,"v":7,"nodes":6,"tile":8,"wall_time_s":1})"),
      Error);
  EXPECT_THROW(
      (void)parse_request(
          R"({"op":"report","o":9,"v":7,"nodes":-4,"tile":8,"wall_time_s":1})"),
      Error);
}

/// Text over the protocol's representable alphabet: printable ASCII,
/// high bytes, and the escapes parse_string round-trips (", \, \n, \t).
/// Control bytes below 0x20 format as \uXXXX, which the flat parser
/// rejects by design — they never appear in responses the server builds.
std::string random_text(Rng& rng, std::size_t max_len) {
  static const std::string palette =
      "abz\"\\{}:,\n\t 0129.-\x7f\xc3\xa9";
  const std::size_t len =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(max_len)));
  std::string s(len, '\0');
  for (char& c : s) {
    c = palette[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(palette.size()) - 1))];
  }
  return s;
}

TEST(ProtocolFuzzTest, ErrorResponsesAlwaysRoundTrip) {
  Rng rng(1234);
  for (int i = 0; i < 1000; ++i) {
    // Error messages frequently embed hostile input; the formatter must
    // escape whatever ends up in them.
    const Response err = error_response(random_text(rng, 80),
                                        /*op=*/"stq", random_text(rng, 12),
                                        /*code=*/"bad_request");
    SCOPED_TRACE("iteration " + std::to_string(i));
    const auto rec = parse_record(format_response(err));
    EXPECT_EQ(rec.at("ok"), "false");
    EXPECT_EQ(rec.at("code"), "bad_request");
    EXPECT_EQ(rec.at("error"), err.error);
  }
}

}  // namespace
}  // namespace ccpred::serve
