#pragma once

/// \file strategy.hpp
/// Query-strategy interface for active learning (§3.4): given the current
/// pool and the model fitted on the labeled rows, pick which unlabeled
/// experiments to run next.

#include <string>
#include <vector>

#include "ccpred/active/pool.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::al {

/// Abstract query strategy.
class QueryStrategy {
 public:
  virtual ~QueryStrategy() = default;

  /// Strategy identifier ("RS", "US", "QC").
  virtual const std::string& name() const = 0;

  /// Selects up to `query_size` positions within pool.unlabeled() to label
  /// next. `fitted_model` is the loop's model, already trained on the
  /// current labeled set. Returned positions are unique; fewer than
  /// query_size may be returned when the pool is nearly empty.
  virtual std::vector<std::size_t> select(const Pool& pool,
                                          const ml::Regressor& fitted_model,
                                          std::size_t query_size,
                                          Rng& rng) = 0;
};

}  // namespace ccpred::al
