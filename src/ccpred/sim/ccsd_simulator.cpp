#include "ccpred/sim/ccsd_simulator.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/sim/network.hpp"
#include "ccpred/sim/noise.hpp"
#include "ccpred/sim/tiling.hpp"

namespace ccpred::sim {
namespace {

/// Binomial coefficient for the tiny arguments used here (k indices <= 2).
std::int64_t binom(int n, int k) {
  if (k < 0 || k > n) return 0;
  std::int64_t r = 1;
  for (int i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

/// Per-dimension tile statistics entering the group expansion.
struct DimTiles {
  std::int64_t full = 0;  ///< number of full tiles
  bool ragged = false;    ///< whether a ragged remainder tile exists
  double full_extent = 0.0;
  double ragged_extent = 0.0;
};

DimTiles dim_tiles(int extent, int tile) {
  const TileDecomposition d = decompose(extent, tile);
  DimTiles t;
  t.full = d.full_tiles;
  t.ragged = d.remainder > 0;
  t.full_extent = static_cast<double>(d.tile);
  t.ragged_extent = static_cast<double>(d.remainder);
  return t;
}

}  // namespace

int CcsdSimulator::min_nodes(int o, int v) const {
  CCPRED_CHECK_MSG(o > 0 && v > 0, "orbital counts must be positive");
  const double od = o;
  const double vd = v;
  const double nd = od + vd;
  // Distributed storage: ~4 copies of the doubles amplitudes/residuals
  // (T2, R2, DIIS history) plus 3-index Cholesky integrals (rank ~ 6N).
  const double bytes = 8.0 * (4.0 * od * od * vd * vd + 6.0 * nd * nd * nd);
  const double per_node = machine_.node_mem_gb * 1e9;
  return static_cast<int>(std::ceil(bytes / per_node));
}

bool CcsdSimulator::feasible(const RunConfig& cfg) const {
  if (cfg.o <= 0 || cfg.v <= 0 || cfg.nodes <= 0 || cfg.tile <= 0) {
    return false;
  }
  return cfg.nodes >= min_nodes(cfg.o, cfg.v);
}

namespace {

/// One (volume, count) bucket of tile blocks over a set of occupied and
/// virtual indices, accounting for ragged remainder tiles.
struct TileBucket {
  double volume = 1.0;       ///< product of the block's index extents
  double count = 1.0;        ///< number of blocks with this volume
};

/// Enumerates the distinct blocks of an index group with `n_occ` occupied
/// and `n_virt` virtual indices: for each choice of how many indices land
/// on the ragged tile, one bucket.
std::vector<TileBucket> enumerate_buckets(const DimTiles& to,
                                          const DimTiles& tv, int n_occ,
                                          int n_virt) {
  std::vector<TileBucket> out;
  for (int jo = 0; jo <= n_occ; ++jo) {
    if (jo > 0 && !to.ragged) continue;
    for (int jv = 0; jv <= n_virt; ++jv) {
      if (jv > 0 && !tv.ragged) continue;
      TileBucket b;
      b.count = static_cast<double>(binom(n_occ, jo) * binom(n_virt, jv));
      for (int i = 0; i < n_occ - jo; ++i) b.count *= static_cast<double>(to.full);
      for (int i = 0; i < n_virt - jv; ++i) b.count *= static_cast<double>(tv.full);
      if (b.count < 0.5) continue;
      b.volume = std::pow(to.full_extent, n_occ - jo) *
                 std::pow(to.ragged_extent, jo) *
                 std::pow(tv.full_extent, n_virt - jv) *
                 std::pow(tv.ragged_extent, jv);
      out.push_back(b);
    }
  }
  if (out.empty()) out.push_back(TileBucket{});  // scalar index group
  return out;
}

}  // namespace

namespace {

/// Materializes one contraction's task groups at a node count: attaches the
/// node-dependent communication time to each bucket's compute time.
std::vector<TaskGroup> materialize_groups(const MachineModel& machine,
                                          const TaskGraph::ContractionTasks& ct,
                                          int nodes) {
  std::vector<TaskGroup> groups;
  groups.reserve(ct.buckets.size());
  for (const auto& b : ct.buckets) {
    const double comm_s =
        transfer_time_s(machine, b.bytes, /*messages=*/2.0, nodes);
    const double hidden = machine.comm_overlap;
    const double task_s = std::max(b.compute_s, comm_s) +
                          (1.0 - hidden) * std::min(b.compute_s, comm_s) +
                          machine.task_overhead_s;
    groups.push_back(TaskGroup{.duration_s = task_s, .count = b.count});
  }
  return groups;
}

}  // namespace

TaskGraph CcsdSimulator::build_task_graph(int o, int v, int tile) const {
  CCPRED_CHECK_MSG(o > 0 && v > 0 && tile > 0,
                   "task graph needs positive O, V and tile");
  const DimTiles to = dim_tiles(o, tile);
  const DimTiles tv = dim_tiles(v, tile);

  const double rate =
      machine_.gpu_tflops * 1e12 * machine_.gemm_efficiency(tile);

  TaskGraph graph;
  graph.o = o;
  graph.v = v;
  graph.tile = tile;
  graph.contractions.reserve(inventory_.size());
  for (const auto& c : inventory_) {
    // One task per (output tile block, summation tile block): TAMM splits
    // the GEMM k-dimension across tasks as well, with local accumulation
    // into the distributed output tile.
    const auto out_buckets = enumerate_buckets(to, tv, c.out_occ, c.out_virt);
    const auto sum_buckets = enumerate_buckets(to, tv, c.sum_occ, c.sum_virt);

    // GPU-memory footprint of one (full-tile) task: output tile plus the
    // two streamed input slabs of one k-block.
    const double out_vol_full = ipow(to.full_extent, c.out_occ) *
                                ipow(tv.full_extent, c.out_virt);
    const double k_full = ipow(to.full_extent, c.sum_occ) *
                          ipow(tv.full_extent, c.sum_virt);
    const double buffer_bytes =
        8.0 * (3.0 * out_vol_full + 2.0 * std::sqrt(out_vol_full) * k_full);
    const double spill = buffer_bytes > machine_.gpu_mem_gb * 1e9
                             ? machine_.spill_penalty
                             : 1.0;

    TaskGraph::ContractionTasks ct;
    ct.buckets.reserve(out_buckets.size() * sum_buckets.size());
    for (const auto& ob : out_buckets) {
      for (const auto& sb : sum_buckets) {
        // GEMM view of one task: C(M x N) += A(M x K) B(K x N) with
        // M*N = ob.volume and K = sb.volume.
        const double flops =
            2.0 * c.mult * ob.volume * sb.volume * machine_.calibration;
        const double mn = 2.0 * std::sqrt(ob.volume);
        ct.buckets.push_back(TaskGraph::Bucket{
            .compute_s = spill * flops / rate,
            .bytes = 8.0 * sb.volume * mn * machine_.calibration,
            .count =
                static_cast<std::int64_t>(std::llround(ob.count * sb.count))});
      }
    }
    // k-chunk partial results are accumulated into the distributed output
    // tensor once per contraction (machine-wide reduction of the output).
    ct.out_bytes = 8.0 * ipow(static_cast<double>(o), c.out_occ) *
                   ipow(static_cast<double>(v), c.out_virt) *
                   machine_.calibration;
    graph.contractions.push_back(std::move(ct));
  }
  return graph;
}

std::vector<TaskGroup> CcsdSimulator::task_groups(const Contraction& c,
                                                  const RunConfig& cfg) const {
  const CcsdSimulator single(machine_, {c});
  const auto graph = single.build_task_graph(cfg.o, cfg.v, cfg.tile);
  return materialize_groups(machine_, graph.contractions.front(), cfg.nodes);
}

CostBreakdown CcsdSimulator::breakdown(const TaskGraph& graph,
                                       int nodes) const {
  CCPRED_CHECK_MSG(feasible({graph.o, graph.v, nodes, graph.tile}),
                   "infeasible CCSD configuration: O=" << graph.o
                       << " V=" << graph.v << " nodes=" << nodes
                       << " tile=" << graph.tile << " (min nodes "
                       << min_nodes(std::max(graph.o, 1), std::max(graph.v, 1))
                       << ")");
  CCPRED_CHECK_MSG(graph.contractions.size() == inventory_.size(),
                   "task graph does not match this simulator's inventory");
  CostBreakdown out;
  const int workers = machine_.workers(nodes);
  for (const auto& ct : graph.contractions) {
    auto groups = materialize_groups(machine_, ct, nodes);
    out.tasks += total_tasks(groups);
    out.contraction_s += lpt_makespan(std::move(groups), workers);
    out.collective_s += ct.out_bytes / (static_cast<double>(nodes) *
                                        machine_.effective_bw_bytes(nodes));
  }
  // Per-iteration collectives: residual-norm allreduce plus the T1
  // amplitude broadcast that every rank needs.
  const double t1_bytes = 8.0 * static_cast<double>(graph.o) * graph.v;
  out.collective_s += allreduce_time_s(machine_, 4096.0, nodes) +
                      allreduce_time_s(machine_, t1_bytes, nodes);
  const double l2 = std::log2(static_cast<double>(nodes) + 1.0);
  out.sync_s = machine_.sync_log2sq_s * l2 * l2;
  out.fixed_s = machine_.fixed_iteration_s;
  return out;
}

CostBreakdown CcsdSimulator::breakdown(const RunConfig& cfg) const {
  CCPRED_CHECK_MSG(feasible(cfg),
                   "infeasible CCSD configuration: O=" << cfg.o
                       << " V=" << cfg.v << " nodes=" << cfg.nodes
                       << " tile=" << cfg.tile << " (min nodes "
                       << min_nodes(std::max(cfg.o, 1), std::max(cfg.v, 1))
                       << ")");
  return breakdown(build_task_graph(cfg.o, cfg.v, cfg.tile), cfg.nodes);
}

double CcsdSimulator::iteration_time(const RunConfig& cfg) const {
  return breakdown(cfg).total_s();
}

double CcsdSimulator::memory_per_node_gb(const RunConfig& cfg) const {
  CCPRED_CHECK_MSG(cfg.o > 0 && cfg.v > 0 && cfg.nodes > 0 && cfg.tile > 0,
                   "run configuration fields must be positive");
  const double od = cfg.o;
  const double vd = cfg.v;
  const double nd = od + vd;
  // Distributed storage (same inventory as min_nodes), evenly spread.
  const double distributed =
      8.0 * (4.0 * od * od * vd * vd + 6.0 * nd * nd * nd) /
      static_cast<double>(cfg.nodes);
  // Resident tile buffers of the node's GPUs, sized by the dominant
  // contraction's full task (output tile + two streamed slabs).
  const double t = cfg.tile;
  const double out_vol = t * t * t * t;
  const double k_tile = std::min(vd * vd, t * t);
  const double buffers = static_cast<double>(machine_.gpus_per_node) * 8.0 *
                         (3.0 * out_vol + 2.0 * std::sqrt(out_vol) * k_tile);
  return (distributed + buffers) / 1e9;
}

double CcsdSimulator::measured_time(const RunConfig& cfg, Rng& rng) const {
  return iteration_time(cfg) * noise_factor(machine_, rng);
}

}  // namespace ccpred::sim
