#include "ccpred/core/adaboost.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ccpred/common/error.hpp"
#include "ccpred/common/rng.hpp"

namespace ccpred::ml {

AdaBoostRegressor::AdaBoostRegressor(int n_estimators, double learning_rate,
                                     AdaBoostLoss loss,
                                     TreeOptions tree_options,
                                     std::uint64_t seed)
    : n_estimators_(n_estimators),
      learning_rate_(learning_rate),
      loss_(loss),
      tree_options_(tree_options),
      seed_(seed) {
  CCPRED_CHECK_MSG(n_estimators > 0, "n_estimators must be > 0");
  CCPRED_CHECK_MSG(learning_rate > 0.0, "learning_rate must be > 0");
}

void AdaBoostRegressor::fit(const linalg::Matrix& x,
                            const std::vector<double>& y) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot fit on empty data");
  const std::size_t n = x.rows();

  trees_.clear();
  stage_weights_.clear();
  std::vector<double> w(n, 1.0 / static_cast<double>(n));
  Rng rng(seed_);

  for (int stage = 0; stage < n_estimators_; ++stage) {
    // Weighted bootstrap: sample n rows with probability proportional to w
    // (inverse-CDF sampling on the cumulative weights).
    std::vector<double> cdf(n);
    std::partial_sum(w.begin(), w.end(), cdf.begin());
    const double total = cdf.back();
    std::vector<std::size_t> rows(n);
    for (auto& r : rows) {
      const double u = rng.uniform() * total;
      r = static_cast<std::size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      if (r >= n) r = n - 1;
    }

    TreeOptions opt = tree_options_;
    opt.seed = rng.next();
    DecisionTreeRegressor tree(opt);
    tree.fit_rows(x, y, rows);

    // Relative errors on the *full* training set.
    std::vector<double> err(n);
    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err[i] = std::abs(tree.predict_row(x.row_ptr(i)) - y[i]);
      max_err = std::max(max_err, err[i]);
    }
    if (max_err <= 0.0) {
      // Perfect learner: keep it with a dominant weight and stop.
      trees_.push_back(std::move(tree));
      stage_weights_.push_back(50.0);
      break;
    }
    for (auto& e : err) {
      e /= max_err;
      switch (loss_) {
        case AdaBoostLoss::kLinear:
          break;
        case AdaBoostLoss::kSquare:
          e = e * e;
          break;
        case AdaBoostLoss::kExponential:
          e = 1.0 - std::exp(-e);
          break;
      }
    }
    double avg_loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) avg_loss += w[i] * err[i];
    avg_loss /= std::accumulate(w.begin(), w.end(), 0.0);
    if (avg_loss >= 0.5) {
      // Drucker's stopping rule: the learner is no better than chance.
      if (trees_.empty()) {
        trees_.push_back(std::move(tree));
        stage_weights_.push_back(1.0);
      }
      break;
    }

    const double beta = avg_loss / (1.0 - avg_loss);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] *= std::pow(beta, learning_rate_ * (1.0 - err[i]));
    }
    trees_.push_back(std::move(tree));
    stage_weights_.push_back(learning_rate_ * std::log(1.0 / beta));
  }
  CCPRED_CHECK_MSG(!trees_.empty(), "AdaBoost produced no learners");
}

std::vector<double> AdaBoostRegressor::predict(const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(is_fitted(), "AdaBoostRegressor::predict before fit");
  std::vector<double> out(x.rows());
  const std::size_t t = trees_.size();
  std::vector<std::pair<double, double>> preds(t);  // (prediction, weight)
  const double half =
      0.5 * std::accumulate(stage_weights_.begin(), stage_weights_.end(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row_ptr(i);
    for (std::size_t k = 0; k < t; ++k) {
      preds[k] = {trees_[k].predict_row(row), stage_weights_[k]};
    }
    std::sort(preds.begin(), preds.end());
    // Weighted median of the stage predictions.
    double acc = 0.0;
    double value = preds.back().first;
    for (const auto& [p, wt] : preds) {
      acc += wt;
      if (acc >= half) {
        value = p;
        break;
      }
    }
    out[i] = value;
  }
  return out;
}

std::unique_ptr<Regressor> AdaBoostRegressor::clone() const {
  return std::make_unique<AdaBoostRegressor>(n_estimators_, learning_rate_,
                                             loss_, tree_options_, seed_);
}

const std::string& AdaBoostRegressor::name() const {
  static const std::string n = "AB";
  return n;
}

void AdaBoostRegressor::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "n_estimators") {
      const int iv = static_cast<int>(std::lround(value));
      CCPRED_CHECK_MSG(iv > 0, "n_estimators must be > 0");
      n_estimators_ = iv;
    } else if (key == "learning_rate") {
      CCPRED_CHECK_MSG(value > 0.0, "learning_rate must be > 0");
      learning_rate_ = value;
    } else if (key == "loss") {
      const int iv = static_cast<int>(std::lround(value));
      CCPRED_CHECK_MSG(iv >= 0 && iv <= 2, "loss code must be 0..2");
      loss_ = static_cast<AdaBoostLoss>(iv);
    } else if (key == "max_depth" || key == "min_samples_split" ||
               key == "min_samples_leaf" || key == "max_features") {
      DecisionTreeRegressor probe(tree_options_);
      probe.set_params({{key, value}});
      tree_options_ = probe.options();
    } else {
      throw Error("AdaBoostRegressor: unknown parameter '" + key + "'");
    }
  }
}

}  // namespace ccpred::ml
