#pragma once

/// \file aligned.hpp
/// 64-byte-aligned allocation for hot numeric storage.
///
/// The SIMD kernels in ccpred/simd issue 32-byte vector loads over
/// `linalg::Matrix` storage and the `CompiledEnsemble` SoA arrays; cache-
/// line (64-byte) alignment keeps every vector access inside one line and
/// makes the aligned-load fast path valid on every block start. The
/// allocator is a thin wrapper over C++17 aligned operator new, so
/// `AlignedVector<T>` behaves exactly like `std::vector<T>` (same growth,
/// same value semantics, same iterator guarantees) — only the storage
/// alignment changes, which is why serialized bytes of any container-backed
/// structure are unchanged.

#include <cstddef>
#include <new>
#include <vector>

namespace ccpred {

inline constexpr std::size_t kCacheLineAlign = 64;

template <typename T, std::size_t Align = kCacheLineAlign>
struct AlignedAllocator {
  using value_type = T;

  static_assert(Align >= alignof(T), "alignment weaker than natural");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// std::vector with cache-line-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace ccpred
