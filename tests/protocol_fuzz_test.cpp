// Fuzz-style property tests for the line-JSON protocol boundary. The
// serving daemon feeds every network line through parse_request, so the
// parser must never crash, never throw anything but ccpred::Error, and the
// error path must always produce a well-formed ok=false response line.
// All inputs are generated from a seeded Rng: a failure reproduces
// bit-for-bit from the seed printed in the assertion message.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ccpred/common/error.hpp"
#include "ccpred/common/rng.hpp"
#include "ccpred/serve/protocol.hpp"
#include "ccpred/serve/wire.hpp"

namespace ccpred::serve {
namespace {

/// Feeds one line through the parse boundary the way the daemon does.
/// Returns true if it parsed; throws only ccpred::Error by contract.
bool survives_boundary(const std::string& line) {
  try {
    (void)parse_request(line);
    return true;
  } catch (const Error&) {
    // The daemon's error path: the message must format into a response
    // line that parses back as a flat record with ok=false.
    const Response err = error_response("rejected: fuzz input");
    const auto rec = parse_record(format_response(err));
    EXPECT_EQ(rec.at("ok"), "false");
    return false;
  }
  // Anything else (std::bad_alloc aside) escapes and fails the test.
}

std::string random_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t len =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(max_len)));
  std::string s(len, '\0');
  for (char& c : s) {
    // Full byte range except '\n' (the daemon splits on newlines before
    // parsing, so a line never contains one).
    c = static_cast<char>(rng.uniform_int(0, 255));
    if (c == '\n') c = ' ';
  }
  return s;
}

std::string valid_request_line(Rng& rng) {
  switch (rng.uniform_int(0, 6)) {
    case 0: return R"({"op":"stq","o":134,"v":951})";
    case 1: return R"({"op":"bq","o":85,"v":698,"machine":"aurora"})";
    case 2: return R"({"op":"budget","o":44,"v":260,"max_node_hours":3.5})";
    case 3: return R"({"op":"job","o":99,"v":718,"nodes":64,"tile":80})";
    case 4:
      return R"({"op":"report","o":99,"v":718,"nodes":64,"tile":80,)"
             R"("wall_time_s":123.4})";
    case 5:
      return R"({"op":"report","o":44,"v":260,"nodes":16,"tile":60,)"
             R"("wall_times":"1.5,2.25,3"})";
    default: return R"({"op":"stats","id":"fz","deadline_ms":250})";
  }
}

TEST(ProtocolFuzzTest, RandomBytesNeverEscapeTheBoundary) {
  Rng rng(20250805);
  for (int i = 0; i < 4000; ++i) {
    const std::string line = random_bytes(rng, 160);
    SCOPED_TRACE("iteration " + std::to_string(i));
    (void)survives_boundary(line);  // any ccpred::Error is acceptable
  }
}

TEST(ProtocolFuzzTest, TruncationsOfValidLinesNeverEscape) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::string line = valid_request_line(rng);
    for (std::size_t cut = 0; cut <= line.size(); ++cut) {
      SCOPED_TRACE("iteration " + std::to_string(i) + " cut " +
                   std::to_string(cut));
      const bool parsed = survives_boundary(line.substr(0, cut));
      if (cut == line.size()) EXPECT_TRUE(parsed);
    }
  }
}

TEST(ProtocolFuzzTest, MutatedValidLinesNeverEscape) {
  Rng rng(42);
  for (int i = 0; i < 4000; ++i) {
    std::string line = valid_request_line(rng);
    const int edits = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < edits; ++e) {
      if (line.empty()) line = "{";
      const std::size_t pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(line.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:  // overwrite with a random byte
          line[pos] = static_cast<char>(rng.uniform_int(1, 255));
          if (line[pos] == '\n') line[pos] = '{';
          break;
        case 1:  // delete one byte
          line.erase(pos, 1);
          break;
        default:  // duplicate one byte
          line.insert(pos, 1, line[pos]);
      }
    }
    if (line.empty()) line = "{";
    SCOPED_TRACE("iteration " + std::to_string(i) + " line " + line);
    (void)survives_boundary(line);
  }
}

TEST(ProtocolFuzzTest, OversizedFieldsAreRejectedNotFatal) {
  // Huge numbers must come back as Error (from_chars out-of-range), not
  // wrap, crash, or parse to garbage.
  EXPECT_THROW(parse_request(R"({"op":"stq","o":999999999999999999999,"v":2})"),
               Error);
  EXPECT_THROW(parse_request(R"({"op":"stq","o":1,"v":2,"deadline_ms":1e99})"),
               Error);
  EXPECT_THROW(
      parse_request(
          R"({"op":"budget","o":1,"v":2,"max_node_hours":1e999999})"),
      Error);
  const std::string long_digits(5000, '7');
  EXPECT_THROW(
      parse_request(R"({"op":"stq","o":)" + long_digits + R"(,"v":2})"),
      Error);

  // Oversized string fields are carried through, not truncated or fatal:
  // unknown machines fail later, at the registry, with a clean Error.
  const std::string big_id(1 << 16, 'x');
  const auto req =
      parse_request(R"({"op":"stq","o":1,"v":2,"id":")" + big_id + R"("})");
  EXPECT_EQ(req.id.size(), big_id.size());

  // Nesting is explicitly unsupported and must throw, not recurse.
  std::string nested = R"({"a":)";
  for (int i = 0; i < 2000; ++i) nested += '{';
  EXPECT_THROW(parse_record(nested), Error);
}

TEST(ProtocolFuzzTest, ReportWallTimesNeverEscapeTheBoundary) {
  // Happy paths first: single measurement and a comma-separated batch.
  const auto single = parse_request(
      R"({"op":"report","o":99,"v":718,"nodes":64,"tile":80,)"
      R"("wall_time_s":123.4})");
  ASSERT_EQ(single.wall_times.size(), 1u);
  EXPECT_DOUBLE_EQ(single.wall_times[0], 123.4);
  const auto batch = parse_request(
      R"({"op":"report","o":99,"v":718,"nodes":64,"tile":80,)"
      R"("wall_times":"1.5,2.25,3"})");
  ASSERT_EQ(batch.wall_times.size(), 3u);
  EXPECT_DOUBLE_EQ(batch.wall_times[1], 2.25);

  // std::from_chars happily parses "nan" and "inf" — the boundary must
  // reject them (and every other non-finite / non-positive value) with a
  // clean Error, never letting them reach the learner.
  const auto with_wall = [](const std::string& value) {
    return R"({"op":"report","o":99,"v":718,"nodes":64,"tile":80,)"
           R"("wall_time_s":)" +
           value + "}";
  };
  for (const char* bad :
       {"nan", "inf", "-inf", "NaN", "Infinity", "-1.5", "0", "0.0", "1e999",
        "\"nan\"", "\"\"", "1.2.3", "true"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW((void)parse_request(with_wall(bad)), Error);
  }

  // Batch entries are validated individually; empty entries are malformed.
  const auto with_batch = [](const std::string& list) {
    return R"({"op":"report","o":99,"v":718,"nodes":64,"tile":80,)"
           R"("wall_times":")" +
           list + R"("})";
  };
  for (const char* bad : {"1.0,nan,2.0", "1.0,inf", "1.0,,2.0", ",1.0",
                          "1.0,", "", "1.0,-2.0"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW((void)parse_request(with_batch(bad)), Error);
  }

  // Oversized batches are rejected at the boundary, not buffered.
  std::string big;
  for (int i = 0; i < 65; ++i) big += (i ? ",1.5" : "1.5");
  EXPECT_THROW((void)parse_request(with_batch(big)), Error);
  std::string at_cap;
  for (int i = 0; i < 64; ++i) at_cap += (i ? ",1.5" : "1.5");
  EXPECT_EQ(parse_request(with_batch(at_cap)).wall_times.size(), 64u);

  // Exactly one measurement field, and positive dimensions.
  EXPECT_THROW(
      (void)parse_request(
          R"({"op":"report","o":9,"v":7,"nodes":6,"tile":8,)"
          R"("wall_time_s":1.0,"wall_times":"2.0"})"),
      Error);
  EXPECT_THROW((void)parse_request(
                   R"({"op":"report","o":9,"v":7,"nodes":6,"tile":8})"),
               Error);
  EXPECT_THROW(
      (void)parse_request(
          R"({"op":"report","o":0,"v":7,"nodes":6,"tile":8,"wall_time_s":1})"),
      Error);
  EXPECT_THROW(
      (void)parse_request(
          R"({"op":"report","o":9,"v":7,"nodes":-4,"tile":8,"wall_time_s":1})"),
      Error);
}

/// Text over the protocol's representable alphabet: printable ASCII,
/// high bytes, and the escapes parse_string round-trips (", \, \n, \t).
/// Control bytes below 0x20 format as \uXXXX, which the flat parser
/// rejects by design — they never appear in responses the server builds.
std::string random_text(Rng& rng, std::size_t max_len) {
  static const std::string palette =
      "abz\"\\{}:,\n\t 0129.-\x7f\xc3\xa9";
  const std::size_t len =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(max_len)));
  std::string s(len, '\0');
  for (char& c : s) {
    c = palette[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(palette.size()) - 1))];
  }
  return s;
}

TEST(ProtocolFuzzTest, ErrorResponsesAlwaysRoundTrip) {
  Rng rng(1234);
  for (int i = 0; i < 1000; ++i) {
    // Error messages frequently embed hostile input; the formatter must
    // escape whatever ends up in them.
    const Response err = error_response(random_text(rng, 80),
                                        /*op=*/"stq", random_text(rng, 12),
                                        /*code=*/"bad_request");
    SCOPED_TRACE("iteration " + std::to_string(i));
    const auto rec = parse_record(format_response(err));
    EXPECT_EQ(rec.at("ok"), "false");
    EXPECT_EQ(rec.at("code"), "bad_request");
    EXPECT_EQ(rec.at("error"), err.error);
  }
}

// --------------------------------------------------------------- binary wire
//
// Same contract as the JSON boundary, for wire.hpp: probe_frame never reads
// past the buffered bytes, rejects oversized declared lengths from the
// header alone, and decode_*() throws only ccpred::Error on malformed
// payloads. All inputs derive from a seeded Rng.

/// A random *valid* request (decode re-validates, so the round-trip
/// property needs inputs that pass validate_request).
Request random_wire_request(Rng& rng) {
  Request r;
  r.o = static_cast<int>(rng.uniform_int(1, 200));
  r.v = static_cast<int>(rng.uniform_int(1, 999));
  r.id = random_text(rng, 12);
  r.machine = (rng.uniform_int(0, 1) != 0) ? "aurora" : "";
  r.model = (rng.uniform_int(0, 1) != 0) ? "gb" : "";
  r.deadline_ms = static_cast<int>(rng.uniform_int(0, 500));
  switch (rng.uniform_int(0, 5)) {
    case 0: r.op = Op::kStq; break;
    case 1: r.op = Op::kBq; break;
    case 2:
      r.op = Op::kBudget;
      r.max_node_hours = rng.uniform(0.5, 50.0);
      break;
    case 3:
      r.op = Op::kJob;
      r.nodes = static_cast<int>(rng.uniform_int(1, 256));
      r.tile = static_cast<int>(rng.uniform_int(10, 120));
      break;
    case 4:
      r.op = Op::kReport;
      r.nodes = static_cast<int>(rng.uniform_int(1, 256));
      r.tile = static_cast<int>(rng.uniform_int(10, 120));
      for (int k = rng.uniform_int(1, 8); k > 0; --k) {
        r.wall_times.push_back(rng.uniform(0.1, 5000.0));
      }
      break;
    default:
      r.op = Op::kStats;
      break;
  }
  return r;
}

Response random_wire_response(Rng& rng) {
  Response r;
  r.ok = rng.uniform_int(0, 3) != 0;
  r.op = op_name(static_cast<Op>(rng.uniform_int(0, 5)));
  r.id = random_text(rng, 10);
  if (!r.ok) {
    r.error = random_text(rng, 40);
    r.code = (rng.uniform_int(0, 1) != 0) ? "internal" : "bad_request";
  }
  r.stale = rng.uniform_int(0, 7) == 0;
  if (rng.uniform_int(0, 1) != 0) {
    r.has_recommendation = true;
    r.nodes = static_cast<int>(rng.uniform_int(1, 256));
    r.tile = static_cast<int>(rng.uniform_int(10, 120));
    r.time_s = rng.uniform(1.0, 1e5);
    r.node_hours = rng.uniform(0.01, 1e3);
    r.model_version = static_cast<std::uint64_t>(rng.uniform_int(1, 9));
    r.sweep_size = static_cast<std::size_t>(rng.uniform_int(0, 500));
    r.cache_hit = rng.uniform_int(0, 1) != 0;
  }
  if (rng.uniform_int(0, 2) == 0) {
    r.has_job = true;
    r.iterations = static_cast<int>(rng.uniform_int(1, 40));
    r.setup_s = rng.uniform(0.0, 100.0);
    r.iteration_s = rng.uniform(0.1, 1000.0);
    r.total_s = rng.uniform(1.0, 1e5);
  }
  if (rng.uniform_int(0, 3) == 0) {
    r.has_report = true;
    r.accepted = static_cast<std::size_t>(rng.uniform_int(0, 64));
    r.duplicates = static_cast<std::size_t>(rng.uniform_int(0, 8));
    r.buffered = static_cast<std::size_t>(rng.uniform_int(0, 4096));
    r.rolling_mape = rng.uniform(0.0, 2.0);
    r.drifting = rng.uniform_int(0, 1) != 0;
    r.refit_scheduled = rng.uniform_int(0, 1) != 0;
  }
  if (rng.uniform_int(0, 4) == 0) {
    r.has_stats = true;
    r.stats.requests = static_cast<std::uint64_t>(rng.uniform_int(0, 100000));
    r.stats.errors = static_cast<std::uint64_t>(rng.uniform_int(0, 500));
    r.stats.cache_hits = static_cast<std::uint64_t>(rng.uniform_int(0, 9999));
    r.stats.cache_hit_rate = rng.uniform(0.0, 1.0);
    r.stats.latency_p50_ms = rng.uniform(0.0, 50.0);
    r.stats.latency_p95_ms = rng.uniform(0.0, 500.0);
    r.stats.verb_latency[2].count =
        static_cast<std::uint64_t>(rng.uniform_int(0, 100));
    r.stats.verb_latency[2].p95_ms = rng.uniform(0.0, 10.0);
    r.stats.verb_latency[2].p99_ms = rng.uniform(0.0, 20.0);
    r.stats.verb_latency[2].max_ms = rng.uniform(0.0, 50.0);
    r.stats.batched_requests =
        static_cast<std::uint64_t>(rng.uniform_int(0, 5000));
    r.stats.batch_flushes = static_cast<std::uint64_t>(rng.uniform_int(0, 999));
    r.stats.batch_bypass = static_cast<std::uint64_t>(rng.uniform_int(0, 999));
    r.stats.batch_size_p50 = rng.uniform(0.0, 64.0);
    r.stats.batch_size_p95 = rng.uniform(0.0, 64.0);
    r.stats.overflow_closed = static_cast<std::uint64_t>(rng.uniform_int(0, 9));
    r.stats.online_enabled = rng.uniform_int(0, 1) != 0;
    r.stats.online.reports = static_cast<std::uint64_t>(rng.uniform_int(0, 99));
    r.stats.online.rolling_mape = rng.uniform(0.0, 3.0);
  }
  return r;
}

const unsigned char* bytes_of(const std::string& s) {
  return reinterpret_cast<const unsigned char*>(s.data());
}

void expect_request_eq(const Request& a, const Request& b, int i) {
  EXPECT_EQ(static_cast<int>(a.op), static_cast<int>(b.op)) << i;
  EXPECT_EQ(a.id, b.id) << i;
  EXPECT_EQ(a.machine, b.machine) << i;
  EXPECT_EQ(a.model, b.model) << i;
  EXPECT_EQ(a.o, b.o) << i;
  EXPECT_EQ(a.v, b.v) << i;
  EXPECT_EQ(a.nodes, b.nodes) << i;
  EXPECT_EQ(a.tile, b.tile) << i;
  EXPECT_EQ(a.max_node_hours, b.max_node_hours) << i;  // bit-exact
  EXPECT_EQ(a.deadline_ms, b.deadline_ms) << i;
  EXPECT_EQ(a.wall_times, b.wall_times) << i;
}

TEST(WireFuzzTest, RequestFramesRoundTripExactly) {
  Rng rng(20250809);
  for (int i = 0; i < 300; ++i) {
    std::vector<Request> batch;
    for (int k = rng.uniform_int(1, 16); k > 0; --k) {
      batch.push_back(random_wire_request(rng));
    }
    const std::string frame = wire::encode_request_frame(batch);
    wire::FrameHeader header;
    std::string error;
    ASSERT_EQ(wire::probe_frame(bytes_of(frame), frame.size(), &header, &error),
              wire::FrameStatus::kHeader)
        << error;
    ASSERT_EQ(frame.size(), wire::kHeaderBytes + header.payload_bytes);
    const auto decoded =
        wire::decode_request_frame(header, bytes_of(frame) + wire::kHeaderBytes);
    ASSERT_EQ(decoded.size(), batch.size());
    for (std::size_t k = 0; k < batch.size(); ++k) {
      SCOPED_TRACE("iteration " + std::to_string(i));
      expect_request_eq(batch[k], decoded[k], static_cast<int>(k));
    }
  }
}

TEST(WireFuzzTest, ResponseFramesRoundTripToIdenticalJson) {
  // The bench's bit-identity gate compares format_response() of a decoded
  // binary answer against the JSON the server would have sent — so the
  // round trip must preserve every field the formatter renders.
  Rng rng(777);
  for (int i = 0; i < 300; ++i) {
    std::vector<Response> batch;
    for (int k = rng.uniform_int(1, 8); k > 0; --k) {
      batch.push_back(random_wire_response(rng));
    }
    const std::string frame = wire::encode_response_frame(batch);
    wire::FrameHeader header;
    std::string error;
    ASSERT_EQ(wire::probe_frame(bytes_of(frame), frame.size(), &header, &error),
              wire::FrameStatus::kHeader)
        << error;
    const auto decoded = wire::decode_response_frame(
        header, bytes_of(frame) + wire::kHeaderBytes);
    ASSERT_EQ(decoded.size(), batch.size());
    for (std::size_t k = 0; k < batch.size(); ++k) {
      SCOPED_TRACE("iteration " + std::to_string(i) + " record " +
                   std::to_string(k));
      EXPECT_EQ(format_response(decoded[k]), format_response(batch[k]));
    }
  }
}

TEST(WireFuzzTest, TruncatedPrefixesAskForMoreNeverCrash) {
  Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    const std::string frame =
        wire::encode_request_frame({random_wire_request(rng)});
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      SCOPED_TRACE("iteration " + std::to_string(i) + " cut " +
                   std::to_string(cut));
      wire::FrameHeader header;
      std::string error;
      const auto status =
          wire::probe_frame(bytes_of(frame), cut, &header, &error);
      // A prefix of a valid frame is never malformed: either the header is
      // incomplete (kNeedMore) or complete and valid (kHeader).
      if (cut < wire::kHeaderBytes) {
        EXPECT_EQ(status, wire::FrameStatus::kNeedMore) << error;
      } else {
        EXPECT_EQ(status, wire::FrameStatus::kHeader) << error;
      }
    }
  }
}

TEST(WireFuzzTest, OversizedDeclaredLengthsRejectedFromHeaderAlone) {
  const auto header_with = [](std::uint16_t count, std::uint32_t payload) {
    std::string h(wire::kHeaderBytes, '\0');
    h[0] = static_cast<char>(0xC3);
    h[1] = 'C';
    h[2] = 'P';
    h[3] = 'B';
    h[4] = static_cast<char>(wire::kVersion);
    h[5] = 0;  // request
    h[6] = static_cast<char>(count & 0xff);
    h[7] = static_cast<char>(count >> 8);
    h[8] = static_cast<char>(payload & 0xff);
    h[9] = static_cast<char>((payload >> 8) & 0xff);
    h[10] = static_cast<char>((payload >> 16) & 0xff);
    h[11] = static_cast<char>((payload >> 24) & 0xff);
    return h;
  };
  wire::FrameHeader header;
  std::string error;

  // A payload over the cap is rejected with ONLY the 12 header bytes
  // buffered — no attacker can make the server allocate it.
  const std::string huge = header_with(1, wire::kMaxFramePayload + 1);
  EXPECT_EQ(wire::probe_frame(bytes_of(huge), huge.size(), &header, &error),
            wire::FrameStatus::kBad);
  EXPECT_FALSE(error.empty());

  const std::string too_many = header_with(wire::kMaxFrameRecords + 1, 64);
  EXPECT_EQ(
      wire::probe_frame(bytes_of(too_many), too_many.size(), &header, &error),
      wire::FrameStatus::kBad);

  // count > 0 with an empty payload cannot encode any record.
  const std::string empty_payload = header_with(3, 0);
  EXPECT_EQ(wire::probe_frame(bytes_of(empty_payload), empty_payload.size(),
                              &header, &error),
            wire::FrameStatus::kBad);

  // Wrong magic / version / kind are all header-only rejections too.
  std::string bad = header_with(1, 64);
  bad[2] = 'X';
  EXPECT_EQ(wire::probe_frame(bytes_of(bad), bad.size(), &header, &error),
            wire::FrameStatus::kBad);
  bad = header_with(1, 64);
  bad[4] = 9;  // unknown version
  EXPECT_EQ(wire::probe_frame(bytes_of(bad), bad.size(), &header, &error),
            wire::FrameStatus::kBad);
  bad = header_with(1, 64);
  bad[5] = 7;  // unknown kind
  EXPECT_EQ(wire::probe_frame(bytes_of(bad), bad.size(), &header, &error),
            wire::FrameStatus::kBad);
}

TEST(WireFuzzTest, FirstByteDisambiguatesFromJsonExactly) {
  for (int b = 0; b < 256; ++b) {
    EXPECT_EQ(wire::starts_frame(static_cast<unsigned char>(b)), b == 0xC3);
  }
}

TEST(WireFuzzTest, MutatedPayloadsThrowOnlyError) {
  Rng rng(4242);
  int decoded_ok = 0;
  for (int i = 0; i < 2000; ++i) {
    std::vector<Request> batch;
    for (int k = rng.uniform_int(1, 4); k > 0; --k) {
      batch.push_back(random_wire_request(rng));
    }
    std::string frame = wire::encode_request_frame(batch);
    // Corrupt payload bytes only: the header stays valid, so the decoder
    // sees the full declared payload, exactly like the event loop does.
    const int edits = static_cast<int>(rng.uniform_int(1, 6));
    for (int e = 0; e < edits && frame.size() > wire::kHeaderBytes; ++e) {
      const std::size_t pos = wire::kHeaderBytes +
                              static_cast<std::size_t>(rng.uniform_int(
                                  0, static_cast<int>(frame.size() -
                                                      wire::kHeaderBytes - 1)));
      frame[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
    wire::FrameHeader header;
    std::string error;
    ASSERT_EQ(wire::probe_frame(bytes_of(frame), frame.size(), &header, &error),
              wire::FrameStatus::kHeader);
    SCOPED_TRACE("iteration " + std::to_string(i));
    try {
      const auto reqs = wire::decode_request_frame(
          header, bytes_of(frame) + wire::kHeaderBytes);
      ++decoded_ok;  // mutation landed in a don't-care byte — fine
      EXPECT_EQ(reqs.size(), batch.size());
    } catch (const Error&) {
      // the only exception the decoder may throw
    }
  }
  // Sanity: the fuzz actually exercised both outcomes.
  EXPECT_GT(decoded_ok, 0);
  EXPECT_LT(decoded_ok, 2000);
}

TEST(WireFuzzTest, RandomBlobsNeverEscapeTheDecoder) {
  Rng rng(31337);
  for (int i = 0; i < 4000; ++i) {
    std::string blob = random_bytes(rng, 200);
    if (rng.uniform_int(0, 1) != 0 && !blob.empty()) {
      blob[0] = static_cast<char>(0xC3);  // force the binary branch often
    }
    wire::FrameHeader header;
    std::string error;
    const auto status =
        wire::probe_frame(bytes_of(blob), blob.size(), &header, &error);
    if (status != wire::FrameStatus::kHeader) continue;
    if (blob.size() < wire::kHeaderBytes + header.payload_bytes) continue;
    SCOPED_TRACE("iteration " + std::to_string(i));
    try {
      (void)wire::decode_request_frame(header,
                                       bytes_of(blob) + wire::kHeaderBytes);
    } catch (const Error&) {
      // only ccpred::Error may escape
    }
  }
}

}  // namespace
}  // namespace ccpred::serve
