#pragma once

/// \file grid_search.hpp
/// Exhaustive grid search with k-fold CV — the GridSearchCV strategy of
/// the paper's Figures 1-2, plus the shared SearchResult record.

#include <string>
#include <vector>

#include "ccpred/common/rng.hpp"
#include "ccpred/core/cross_validation.hpp"
#include "ccpred/core/param_space.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::ml {

/// One evaluated candidate during a search.
struct SearchTrial {
  ParamMap params;
  Scores cv_scores;   ///< mean CV metrics
  double value = 0.0; ///< scoring_value(cv_scores, scoring)
};

/// Outcome of any search strategy.
struct SearchResult {
  ParamMap best_params;
  Scores best_cv_scores;
  std::vector<SearchTrial> trials;
  double elapsed_s = 0.0;  ///< wall time of the whole search
  std::unique_ptr<Regressor> best_model;  ///< refit on the full data

  double best_value(Scoring scoring) const {
    return scoring_value(best_cv_scores, scoring);
  }
};

/// Common knobs of all search strategies.
struct SearchOptions {
  int cv_folds = 3;
  Scoring scoring = Scoring::kR2;
  std::uint64_t seed = 7;
  bool refit = true;  ///< train best_model on the full data afterwards
};

/// Evaluates every grid point with CV and returns the best (ties broken by
/// first occurrence in deterministic grid order).
SearchResult grid_search(const Regressor& prototype, const ParamGrid& grid,
                         const linalg::Matrix& x, const std::vector<double>& y,
                         const SearchOptions& options = {});

namespace detail {

/// Evaluates an explicit candidate list with CV (shared implementation of
/// grid and randomized search).
SearchResult evaluate_candidates(const Regressor& prototype,
                                 const std::vector<ParamMap>& candidates,
                                 const linalg::Matrix& x,
                                 const std::vector<double>& y,
                                 const SearchOptions& options);

}  // namespace detail

}  // namespace ccpred::ml
