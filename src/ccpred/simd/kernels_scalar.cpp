/// \file kernels_scalar.cpp
/// Portable kernel implementations. These are the exact loops the fast
/// engines shipped with before the SIMD layer (PRs 2/3), so the scalar
/// dispatch mode reproduces pre-SIMD numeric behavior bit-for-bit; the
/// shared-structure variants (split_scan's zero-block skip, the
/// hist_accumulate partial-histogram threshold) mirror the AVX2 TU so both
/// modes produce identical bits at every input size.

#include <algorithm>
#include <cmath>
#include <vector>

#include "ccpred/simd/kernels.hpp"

namespace ccpred::simd {

void scalar_rbf_exp_map(const double* dist2, double* out, std::size_t n,
                        double gamma) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(-gamma * dist2[i]);
}

void scalar_sqdist_row(const double* xt, std::size_t n, std::size_t d,
                       const double* row, std::size_t j0, std::size_t j1,
                       double* out) {
  for (std::size_t j = j0; j < j1; ++j) {
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double diff = xt[k * n + j] - row[k];
      acc += diff * diff;
    }
    out[j] = acc;
  }
}

void scalar_ensemble_step(const TravNode* nodes, const double* x,
                          std::size_t bn, std::size_t n_cols,
                          std::int32_t* idx) {
  const double* row = x;
  for (std::size_t i = 0; i < bn; ++i, row += n_cols) {
    const TravNode& nd = nodes[idx[i]];
    idx[i] =
        nd.left + static_cast<std::int32_t>(!(row[nd.tfeat] <= nd.threshold));
  }
}

namespace {

inline void hist_accumulate_seq(const std::uint16_t* codes, std::size_t d,
                                const int* offsets, const std::uint32_t* rows,
                                std::size_t n, const double* y, double* sum,
                                std::uint32_t* count) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = rows[i];
    const std::uint16_t* c = codes + r * d;
    const double target = y[r];
    for (std::size_t f = 0; f < d; ++f) {
      const auto idx = static_cast<std::size_t>(offsets[f]) + c[f];
      sum[idx] += target;
      ++count[idx];
    }
  }
}

/// 4-way partial histograms with a deterministic merge; pays only when the
/// row count dwarfs the bin count (the zeroing + merge cost is 8 *
/// total_bins operations).
inline void hist_accumulate_partials(const std::uint16_t* codes, std::size_t d,
                                     const int* offsets,
                                     const std::uint32_t* rows, std::size_t n,
                                     const double* y, double* sum,
                                     std::uint32_t* count,
                                     std::size_t total_bins) {
  thread_local std::vector<double> psum;
  thread_local std::vector<std::uint32_t> pcount;
  psum.assign(4 * total_bins, 0.0);
  pcount.assign(4 * total_bins, 0);
  double* s0 = psum.data();
  double* s1 = s0 + total_bins;
  double* s2 = s1 + total_bins;
  double* s3 = s2 + total_bins;
  std::uint32_t* c0 = pcount.data();
  std::uint32_t* c1 = c0 + total_bins;
  std::uint32_t* c2 = c1 + total_bins;
  std::uint32_t* c3 = c2 + total_bins;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint16_t* a = codes + rows[i] * d;
    const std::uint16_t* b = codes + rows[i + 1] * d;
    const std::uint16_t* c = codes + rows[i + 2] * d;
    const std::uint16_t* e = codes + rows[i + 3] * d;
    const double t0 = y[rows[i]], t1 = y[rows[i + 1]], t2 = y[rows[i + 2]],
                 t3 = y[rows[i + 3]];
    for (std::size_t f = 0; f < d; ++f) {
      const auto off = static_cast<std::size_t>(offsets[f]);
      s0[off + a[f]] += t0;
      ++c0[off + a[f]];
      s1[off + b[f]] += t1;
      ++c1[off + b[f]];
      s2[off + c[f]] += t2;
      ++c2[off + c[f]];
      s3[off + e[f]] += t3;
      ++c3[off + e[f]];
    }
  }
  hist_accumulate_seq(codes, d, offsets, rows + i, n - i, y, s0, c0);
  for (std::size_t b = 0; b < total_bins; ++b) {
    sum[b] += ((s0[b] + s1[b]) + s2[b]) + s3[b];
    count[b] += ((c0[b] + c1[b]) + c2[b]) + c3[b];
  }
}

}  // namespace

void scalar_hist_accumulate(const std::uint16_t* codes, std::size_t d,
                            const int* offsets, const std::uint32_t* rows,
                            std::size_t n, const double* y, double* sum,
                            std::uint32_t* count, std::size_t total_bins) {
  if (n >= 8 * total_bins) {
    hist_accumulate_partials(codes, d, offsets, rows, n, y, sum, count,
                             total_bins);
  } else {
    hist_accumulate_seq(codes, d, offsets, rows, n, y, sum, count);
  }
}

void scalar_hist_subtract(double* sum, std::uint32_t* count,
                          const double* osum, const std::uint32_t* ocount,
                          std::size_t total_bins) {
  for (std::size_t i = 0; i < total_bins; ++i) {
    sum[i] -= osum[i];
    count[i] -= ocount[i];
  }
}

bool scalar_split_scan(const double* sum, const std::uint32_t* count, int m,
                       double total, std::size_t n, std::size_t min_leaf,
                       double* io_best_gain, int* out_bin,
                       double* out_left_sum, std::size_t* out_left_count) {
  double best_gain = *io_best_gain;
  bool improved = false;
  double left_sum = 0.0;
  std::size_t left_count = 0;
  const double tt_n = total * total / static_cast<double>(n);
  int b = 0;
  while (b < m) {
    // Skip blocks of 8 empty bins outright: untouched bins hold exactly
    // +0.0, so the prefix state is unchanged.
    if (b + 8 <= m) {
      const std::uint32_t any = count[b] | count[b + 1] | count[b + 2] |
                                count[b + 3] | count[b + 4] | count[b + 5] |
                                count[b + 6] | count[b + 7];
      if (any == 0) {
        b += 8;
        continue;
      }
    }
    const int bend = b + 8 <= m ? b + 8 : m;
    for (; b < bend; ++b) {
      left_sum += sum[b];
      left_count += count[b];
      if (count[b] == 0) continue;
      const std::size_t nl = left_count;
      const std::size_t nr = n - left_count;
      if (nl < min_leaf || nr < min_leaf || nr == 0) continue;
      const double right_sum = total - left_sum;
      const double gain = left_sum * left_sum / static_cast<double>(nl) +
                          right_sum * right_sum / static_cast<double>(nr) -
                          tt_n;
      if (gain > best_gain) {
        best_gain = gain;
        *out_bin = b;
        *out_left_sum = left_sum;
        *out_left_count = left_count;
        improved = true;
      }
    }
  }
  if (improved) *io_best_gain = best_gain;
  return improved;
}

void scalar_bin_codes(const double* x, std::size_t n, std::size_t stride,
                      const double* edges, int n_edges, std::uint16_t* out,
                      std::size_t out_stride) {
  // The shipped per-value binary search: first edge >= x, i.e. the count
  // of edges strictly below the value.
  const double* end = edges + n_edges;
  for (std::size_t r = 0; r < n; ++r) {
    const double v = x[r * stride];
    out[r * out_stride] =
        static_cast<std::uint16_t>(std::lower_bound(edges, end, v) - edges);
  }
}

void scalar_update2x4(double* ya, double* yb, const double* a, const double* b,
                      const double* y0, const double* y1, const double* y2,
                      const double* y3, std::size_t len) {
  const double a0 = a[0], a1 = a[1], a2 = a[2], a3 = a[3];
  const double b0 = b[0], b1 = b[1], b2 = b[2], b3 = b[3];
  for (std::size_t c = 0; c < len; ++c) {
    const double q0 = y0[c];
    const double q1 = y1[c];
    const double q2 = y2[c];
    const double q3 = y3[c];
    ya[c] -= a0 * q0 + a1 * q1 + a2 * q2 + a3 * q3;
    yb[c] -= b0 * q0 + b1 * q1 + b2 * q2 + b3 * q3;
  }
}

void scalar_update1x4(double* yr, const double* a, const double* y0,
                      const double* y1, const double* y2, const double* y3,
                      std::size_t len) {
  const double a0 = a[0], a1 = a[1], a2 = a[2], a3 = a[3];
  for (std::size_t c = 0; c < len; ++c) {
    yr[c] -= a0 * y0[c] + a1 * y1[c] + a2 * y2[c] + a3 * y3[c];
  }
}

}  // namespace ccpred::simd
