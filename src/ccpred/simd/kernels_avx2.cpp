/// \file kernels_avx2.cpp
/// AVX2+FMA kernel implementations. This is the only translation unit in
/// the tree built with -mavx2 -mfma; it is also built with
/// -ffp-contract=off so the compiler cannot fuse the mul+add sequences
/// that carry bit-identity contracts — FMA appears only where written
/// explicitly (`rbf_exp_map`, `update2x4`/`update1x4`), which are the
/// kernels covered by the 1e-9 agreement gates instead.

#if defined(CCPRED_HAVE_AVX2_BUILD)

#include <immintrin.h>

#include <cmath>
#include <limits>
#include <vector>

#include "ccpred/simd/kernels.hpp"

namespace ccpred::simd {

namespace {

/// Cephes-style vector exp (rational 6/6 approximation + 2^k scaling);
/// measured max relative error vs libm ~3e-16 over the RBF input range.
inline __m256d exp_pd(__m256d xv) {
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d c1 = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d c2 = _mm256_set1_pd(1.42860682030941723212e-6);
  __m256d x = _mm256_max_pd(_mm256_min_pd(xv, _mm256_set1_pd(708.0)),
                            _mm256_set1_pd(-708.0));
  const __m256d fx = _mm256_round_pd(
      _mm256_mul_pd(x, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  x = _mm256_fnmadd_pd(fx, c1, x);
  x = _mm256_fnmadd_pd(fx, c2, x);
  const __m256d x2 = _mm256_mul_pd(x, x);
  __m256d px = _mm256_set1_pd(1.26177193074810590878e-4);
  px = _mm256_fmadd_pd(px, x2, _mm256_set1_pd(3.02994407707441961300e-2));
  px = _mm256_fmadd_pd(px, x2, _mm256_set1_pd(9.99999999999999999910e-1));
  px = _mm256_mul_pd(px, x);
  __m256d qx = _mm256_set1_pd(3.00198505138664455042e-6);
  qx = _mm256_fmadd_pd(qx, x2, _mm256_set1_pd(2.52448340349684104192e-3));
  qx = _mm256_fmadd_pd(qx, x2, _mm256_set1_pd(2.27265548208155028766e-1));
  qx = _mm256_fmadd_pd(qx, x2, _mm256_set1_pd(2.00000000000000000005e0));
  __m256d r = _mm256_div_pd(px, _mm256_sub_pd(qx, px));
  r = _mm256_fmadd_pd(_mm256_set1_pd(2.0), r, _mm256_set1_pd(1.0));
  const __m128i k32 = _mm256_cvtpd_epi32(fx);
  const __m256i k64 = _mm256_cvtepi32_epi64(k32);
  const __m256i pow2 =
      _mm256_slli_epi64(_mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
  const __m256d res = _mm256_mul_pd(r, _mm256_castsi256_pd(pow2));
  // Below the clamp the true exp is at most ~3e-308; flush those lanes to
  // +0 like libm's underflow instead of returning the clamp's floor value.
  const __m256d under =
      _mm256_cmp_pd(xv, _mm256_set1_pd(-708.0), _CMP_LT_OQ);
  return _mm256_andnot_pd(under, res);
}

}  // namespace

void avx2_rbf_exp_map(const double* dist2, double* out, std::size_t n,
                      double gamma) {
  const __m256d ng = _mm256_set1_pd(-gamma);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     exp_pd(_mm256_mul_pd(ng, _mm256_loadu_pd(dist2 + i))));
  }
  if (i < n) {
    // Tail through the same polynomial (padded vector) so an element's
    // result does not depend on where it lands in the buffer — calls over
    // different slices of the same data agree bit-for-bit.
    alignas(32) double tmp[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t j = i; j < n; ++j) tmp[j - i] = dist2[j];
    _mm256_store_pd(tmp, exp_pd(_mm256_mul_pd(ng, _mm256_load_pd(tmp))));
    for (std::size_t j = i; j < n; ++j) out[j] = tmp[j - i];
  }
}

void avx2_sqdist_row(const double* xt, std::size_t n, std::size_t d,
                     const double* row, std::size_t j0, std::size_t j1,
                     double* out) {
  std::size_t j = j0;
  for (; j + 4 <= j1; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t k = 0; k < d; ++k) {
      const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(xt + k * n + j),
                                         _mm256_set1_pd(row[k]));
      // mul and add kept separate (never fused): bit-identical to scalar.
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(out + j, acc);
  }
  for (; j < j1; ++j) {
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double diff = xt[k * n + j] - row[k];
      acc += diff * diff;
    }
    out[j] = acc;
  }
}

void avx2_ensemble_step(const TravNode* nodes, const double* x,
                        std::size_t bn, std::size_t n_cols,
                        std::int32_t* idx) {
  // Gather-based level step: thresholds and (tfeat, left) pairs are pulled
  // 4 rows at a time from the 16-byte node records. Comparisons and index
  // arithmetic are exact integer/IEEE-compare operations, so the result is
  // bit-identical to the scalar step.
  const double* base = reinterpret_cast<const double*>(nodes);
  const long long* meta_base = reinterpret_cast<const long long*>(nodes);
  const __m128i one = _mm_set1_epi32(1);
  const __m256i evens = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  const auto stride = static_cast<std::int32_t>(n_cols);
  std::size_t i = 0;
  for (; i + 4 <= bn; i += 4) {
    const std::int32_t r0 = static_cast<std::int32_t>(i) * stride;
    const __m128i roff =
        _mm_setr_epi32(r0, r0 + stride, r0 + 2 * stride, r0 + 3 * stride);
    const __m128i cur = _mm_loadu_si128(reinterpret_cast<__m128i*>(idx + i));
    const __m128i i2 = _mm_slli_epi32(cur, 1);
    const __m256d thr = _mm256_i32gather_pd(base, i2, 8);
    const __m256i meta =
        _mm256_i32gather_epi64(meta_base, _mm_add_epi32(i2, one), 8);
    const __m256i packed = _mm256_permutevar8x32_epi32(meta, evens);
    const __m128i tfeat = _mm256_castsi256_si128(packed);
    const __m128i left = _mm256_extracti128_si256(packed, 1);
    const __m256d feat =
        _mm256_i32gather_pd(x, _mm_add_epi32(roff, tfeat), 8);
    const __m256d le = _mm256_cmp_pd(feat, thr, _CMP_LE_OQ);
    // le lanes are all-ones (-1) when going left: next = left + 1 + le.
    const __m128i le32 = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(_mm256_castpd_si256(le), evens));
    const __m128i next = _mm_add_epi32(left, _mm_add_epi32(one, le32));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(idx + i), next);
  }
  for (; i < bn; ++i) {
    const double* row = x + i * n_cols;
    const TravNode& nd = nodes[idx[i]];
    idx[i] =
        nd.left + static_cast<std::int32_t>(!(row[nd.tfeat] <= nd.threshold));
  }
}

namespace {

inline void hist_accumulate_seq(const std::uint16_t* codes, std::size_t d,
                                const int* offsets, const std::uint32_t* rows,
                                std::size_t n, const double* y, double* sum,
                                std::uint32_t* count) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = rows[i];
    const std::uint16_t* c = codes + r * d;
    const double target = y[r];
    for (std::size_t f = 0; f < d; ++f) {
      const auto idx = static_cast<std::size_t>(offsets[f]) + c[f];
      sum[idx] += target;
      ++count[idx];
    }
  }
}

}  // namespace

void avx2_hist_accumulate(const std::uint16_t* codes, std::size_t d,
                          const int* offsets, const std::uint32_t* rows,
                          std::size_t n, const double* y, double* sum,
                          std::uint32_t* count, std::size_t total_bins) {
  if (n < 8 * total_bins) {
    // Binned scatter has no AVX2 encoding; the sequential loop is already
    // ILP-bound. Same path (and bits) as the scalar mode at this size.
    hist_accumulate_seq(codes, d, offsets, rows, n, y, sum, count);
    return;
  }
  // 4-way partial histograms (same threshold and merge order as the scalar
  // TU); only the zeroing and the deterministic merge vectorize.
  thread_local std::vector<double> psum;
  thread_local std::vector<std::uint32_t> pcount;
  psum.assign(4 * total_bins, 0.0);
  pcount.assign(4 * total_bins, 0);
  double* s0 = psum.data();
  double* s1 = s0 + total_bins;
  double* s2 = s1 + total_bins;
  double* s3 = s2 + total_bins;
  std::uint32_t* c0 = pcount.data();
  std::uint32_t* c1 = c0 + total_bins;
  std::uint32_t* c2 = c1 + total_bins;
  std::uint32_t* c3 = c2 + total_bins;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint16_t* a = codes + rows[i] * d;
    const std::uint16_t* b = codes + rows[i + 1] * d;
    const std::uint16_t* c = codes + rows[i + 2] * d;
    const std::uint16_t* e = codes + rows[i + 3] * d;
    const double t0 = y[rows[i]], t1 = y[rows[i + 1]], t2 = y[rows[i + 2]],
                 t3 = y[rows[i + 3]];
    for (std::size_t f = 0; f < d; ++f) {
      const auto off = static_cast<std::size_t>(offsets[f]);
      s0[off + a[f]] += t0;
      ++c0[off + a[f]];
      s1[off + b[f]] += t1;
      ++c1[off + b[f]];
      s2[off + c[f]] += t2;
      ++c2[off + c[f]];
      s3[off + e[f]] += t3;
      ++c3[off + e[f]];
    }
  }
  hist_accumulate_seq(codes, d, offsets, rows + i, n - i, y, s0, c0);
  std::size_t b = 0;
  for (; b + 4 <= total_bins; b += 4) {
    // ((s0+s1)+s2)+s3 per lane: same order as the scalar merge.
    __m256d acc = _mm256_add_pd(_mm256_loadu_pd(s0 + b),
                                _mm256_loadu_pd(s1 + b));
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(s2 + b));
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(s3 + b));
    _mm256_storeu_pd(sum + b, _mm256_add_pd(_mm256_loadu_pd(sum + b), acc));
  }
  for (; b < total_bins; ++b) sum[b] += ((s0[b] + s1[b]) + s2[b]) + s3[b];
  b = 0;
  for (; b + 8 <= total_bins; b += 8) {
    __m256i acc = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c0 + b)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c1 + b)));
    acc = _mm256_add_epi32(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c2 + b)));
    acc = _mm256_add_epi32(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c3 + b)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(count + b),
        _mm256_add_epi32(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(count + b)),
            acc));
  }
  for (; b < total_bins; ++b) count[b] += ((c0[b] + c1[b]) + c2[b]) + c3[b];
}

void avx2_hist_subtract(double* sum, std::uint32_t* count, const double* osum,
                        const std::uint32_t* ocount, std::size_t total_bins) {
  std::size_t i = 0;
  for (; i + 4 <= total_bins; i += 4) {
    _mm256_storeu_pd(sum + i, _mm256_sub_pd(_mm256_loadu_pd(sum + i),
                                            _mm256_loadu_pd(osum + i)));
  }
  for (; i < total_bins; ++i) sum[i] -= osum[i];
  i = 0;
  for (; i + 8 <= total_bins; i += 8) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(count + i),
        _mm256_sub_epi32(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(count + i)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(ocount + i))));
  }
  for (; i < total_bins; ++i) count[i] -= ocount[i];
}

void avx2_bin_codes(const double* x, std::size_t n, std::size_t stride,
                    const double* edges, int n_edges, std::uint16_t* out,
                    std::size_t out_stride) {
  // The code of a value is the number of edges strictly below it — an
  // integer count, so lane-parallel counting agrees with the scalar
  // binary search bit-for-bit, ties included. Edge vectors are loaded
  // once and held in registers across the whole row sweep; +inf padding
  // lanes can never satisfy edge < x for finite or NaN input.
  if (n_edges > 64) {
    // Wider ladders than the register file; the branchy search wins
    // nothing here anyway at such depths.
    scalar_bin_codes(x, n, stride, edges, n_edges, out, out_stride);
    return;
  }
  __m256d ev[16];
  const int nv = (n_edges + 3) / 4;
  for (int k = 0; k < nv; ++k) {
    if ((k + 1) * 4 <= n_edges) {
      ev[k] = _mm256_loadu_pd(edges + k * 4);
    } else {
      double tail[4] = {std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity()};
      for (int j = k * 4; j < n_edges; ++j) tail[j - k * 4] = edges[j];
      ev[k] = _mm256_loadu_pd(tail);
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    const __m256d v = _mm256_set1_pd(x[r * stride]);
    __m256i acc = _mm256_setzero_si256();
    for (int k = 0; k < nv; ++k) {
      const __m256d lt = _mm256_cmp_pd(ev[k], v, _CMP_LT_OQ);
      acc = _mm256_sub_epi64(acc, _mm256_castpd_si256(lt));
    }
    const __m128i half = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                       _mm256_extracti128_si256(acc, 1));
    const long long c =
        _mm_extract_epi64(half, 0) + _mm_extract_epi64(half, 1);
    out[r * out_stride] = static_cast<std::uint16_t>(c);
  }
}

void avx2_update2x4(double* ya, double* yb, const double* a, const double* b,
                    const double* y0, const double* y1, const double* y2,
                    const double* y3, std::size_t len) {
  const __m256d a0 = _mm256_set1_pd(a[0]);
  const __m256d a1 = _mm256_set1_pd(a[1]);
  const __m256d a2 = _mm256_set1_pd(a[2]);
  const __m256d a3 = _mm256_set1_pd(a[3]);
  const __m256d b0 = _mm256_set1_pd(b[0]);
  const __m256d b1 = _mm256_set1_pd(b[1]);
  const __m256d b2 = _mm256_set1_pd(b[2]);
  const __m256d b3 = _mm256_set1_pd(b[3]);
  std::size_t c = 0;
  for (; c + 4 <= len; c += 4) {
    const __m256d q0 = _mm256_loadu_pd(y0 + c);
    const __m256d q1 = _mm256_loadu_pd(y1 + c);
    const __m256d q2 = _mm256_loadu_pd(y2 + c);
    const __m256d q3 = _mm256_loadu_pd(y3 + c);
    __m256d sa = _mm256_mul_pd(a0, q0);
    sa = _mm256_fmadd_pd(a1, q1, sa);
    sa = _mm256_fmadd_pd(a2, q2, sa);
    sa = _mm256_fmadd_pd(a3, q3, sa);
    __m256d sb = _mm256_mul_pd(b0, q0);
    sb = _mm256_fmadd_pd(b1, q1, sb);
    sb = _mm256_fmadd_pd(b2, q2, sb);
    sb = _mm256_fmadd_pd(b3, q3, sb);
    _mm256_storeu_pd(ya + c, _mm256_sub_pd(_mm256_loadu_pd(ya + c), sa));
    _mm256_storeu_pd(yb + c, _mm256_sub_pd(_mm256_loadu_pd(yb + c), sb));
  }
  for (; c < len; ++c) {
    const double q0 = y0[c], q1 = y1[c], q2 = y2[c], q3 = y3[c];
    ya[c] -= a[0] * q0 + a[1] * q1 + a[2] * q2 + a[3] * q3;
    yb[c] -= b[0] * q0 + b[1] * q1 + b[2] * q2 + b[3] * q3;
  }
}

void avx2_update1x4(double* yr, const double* a, const double* y0,
                    const double* y1, const double* y2, const double* y3,
                    std::size_t len) {
  const __m256d a0 = _mm256_set1_pd(a[0]);
  const __m256d a1 = _mm256_set1_pd(a[1]);
  const __m256d a2 = _mm256_set1_pd(a[2]);
  const __m256d a3 = _mm256_set1_pd(a[3]);
  std::size_t c = 0;
  for (; c + 4 <= len; c += 4) {
    __m256d s = _mm256_mul_pd(a0, _mm256_loadu_pd(y0 + c));
    s = _mm256_fmadd_pd(a1, _mm256_loadu_pd(y1 + c), s);
    s = _mm256_fmadd_pd(a2, _mm256_loadu_pd(y2 + c), s);
    s = _mm256_fmadd_pd(a3, _mm256_loadu_pd(y3 + c), s);
    _mm256_storeu_pd(yr + c, _mm256_sub_pd(_mm256_loadu_pd(yr + c), s));
  }
  for (; c < len; ++c) {
    yr[c] -= a[0] * y0[c] + a[1] * y1[c] + a[2] * y2[c] + a[3] * y3[c];
  }
}

}  // namespace ccpred::simd

#endif  // CCPRED_HAVE_AVX2_BUILD
