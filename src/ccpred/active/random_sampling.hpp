#pragma once

/// \file random_sampling.hpp
/// Random sampling (RS) — the paper's active-learning baseline: queries
/// uniformly random unlabeled experiments.

#include "ccpred/active/strategy.hpp"

namespace ccpred::al {

/// Uniform random query selection.
class RandomSampling : public QueryStrategy {
 public:
  const std::string& name() const override;
  std::vector<std::size_t> select(const Pool& pool,
                                  const ml::Regressor& fitted_model,
                                  std::size_t query_size, Rng& rng) override;
};

}  // namespace ccpred::al
