#include "ccpred/exec/task_scope.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "ccpred/exec/sharded_cache.hpp"  // splitmix64, kGoldenGamma

namespace ccpred::exec {

namespace {

std::atomic<std::uint64_t> shuffle_seed{0};

}  // namespace

TaskScope::TaskScope(ThreadPool* pool)
    : pool_(pool == nullptr ? &ThreadPool::global() : pool), group_(*pool_) {}

void TaskScope::fork(std::function<void()> task) {
  group_.run(std::move(task));
}

void TaskScope::wait() { group_.wait(); }

std::uint64_t TaskScope::task_seed(std::uint64_t base, std::uint64_t index) {
  // base advanced along the splitmix64 stream by (index + 1) gammas; the +1
  // keeps task 0's seed distinct from the base itself.
  return splitmix64(base + (index + 1) * kGoldenGamma);
}

void TaskScope::set_shuffle_for_testing(std::uint64_t seed) {
  shuffle_seed.store(seed, std::memory_order_relaxed);
}

std::vector<std::size_t> TaskScope::iteration_order(std::size_t begin,
                                                    std::size_t end) {
  std::vector<std::size_t> order(end - begin);
  std::iota(order.begin(), order.end(), begin);
  const std::uint64_t seed = shuffle_seed.load(std::memory_order_relaxed);
  if (seed != 0 && order.size() > 1) {
    // Fisher–Yates driven by the splitmix64 stream of the knob's seed.
    std::uint64_t state = seed;
    for (std::size_t i = order.size() - 1; i > 0; --i) {
      state += kGoldenGamma;
      std::swap(order[i], order[splitmix64(state) % (i + 1)]);
    }
  }
  return order;
}

void TaskScope::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& body) {
  run_loop(begin, end, [&body](std::size_t i, Arena*) { body(i); },
           /*with_arenas=*/false);
}

void TaskScope::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, Arena&)>& body) {
  run_loop(begin, end,
           [&body](std::size_t i, Arena* arena) { body(i, *arena); },
           /*with_arenas=*/true);
}

void TaskScope::run_loop(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, Arena*)>& body, bool with_arenas) {
  if (begin >= end) return;
  const std::vector<std::size_t> order = iteration_order(begin, end);
  const std::size_t n = order.size();
  const std::size_t workers = std::min(pool_->size(), n);

  // Arenas are created lazily (only the arena overload pays for them) and
  // reused — reset, not reallocated — across calls on the same scope.
  const auto chunk_arena = [this, with_arenas](std::size_t w) -> Arena* {
    if (!with_arenas) return nullptr;
    while (arenas_.size() <= w) arenas_.push_back(std::make_unique<Arena>());
    Arena* arena = arenas_[w].get();
    arena->reset();
    return arena;
  };

  if (workers <= 1 || in_parallel_region()) {
    Arena* arena = chunk_arena(0);
    for (const std::size_t i : order) body(i, arena);
    return;
  }

  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = w * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    Arena* arena = chunk_arena(w);
    group_.run([lo, hi, arena, &order, &body] {
      set_in_parallel_region(true);
      for (std::size_t k = lo; k < hi; ++k) body(order[k], arena);
      set_in_parallel_region(false);
    });
  }
  group_.wait();  // rethrows the first chunk exception, if any
}

}  // namespace ccpred::exec
