#pragma once

/// \file fault_injector.hpp
/// Deterministic fault injection for the serving layer. Chaos tests (and
/// operators rehearsing failure drills) arm an injector with per-point
/// probabilities; the server, registry and sweep cache consult it at four
/// injection points:
///
///  * kArtifactRead  — an artifact (re)load throws as if the file were
///    unreadable, exercising the registry's stale-while-revalidate path;
///  * kSweepCompute  — an enumerate+predict sweep is slowed down,
///    exercising deadlines and single-flight waiting;
///  * kWorkerStall   — a worker stalls before handling a request,
///    exercising queue backpressure and load shedding;
///  * kCacheShard    — a cache shard's mutex is held longer, exercising
///    contention between requests that hash to the same shard;
///  * kReportIngest  — feedback-report ingestion is slowed, exercising
///    report storms against the online-learning buffers;
///  * kRefitStall    — a background full refit stalls mid-flight,
///    exercising drift recovery under slow retraining;
///  * kPromotionRace — the window between a passed shadow evaluation and
///    the atomic republish is stretched, exercising promotion races;
///  * kShardKill     — a serving-fleet shard is torn down mid-traffic,
///    exercising consistent-hash failover to a live replica;
///  * kShardRestart  — a previously killed shard rejoins with an empty
///    cache, exercising re-warm and ownership hand-back.
///
/// Every decision is a pure function of (seed, point, arrival index): the
/// Nth arrival at a point always draws the same verdict and the same delay,
/// so a chaos run's fault schedule is bit-reproducible from its seed. The
/// injector is compiled in always; production code holds a null pointer
/// (or a default-constructed injector with all probabilities zero), which
/// costs one branch on the happy path.

#include <atomic>
#include <cstdint>

namespace ccpred::serve {

/// Where a fault can be injected.
enum class FaultPoint : int {
  kArtifactRead = 0,   ///< registry artifact load throws
  kSweepCompute = 1,   ///< sweep computation is delayed
  kWorkerStall = 2,    ///< request worker stalls before dispatch
  kCacheShard = 3,     ///< cache shard mutex held longer
  kReportIngest = 4,   ///< feedback-report ingestion is delayed
  kRefitStall = 5,     ///< background full refit stalls
  kPromotionRace = 6,  ///< shadow-eval-to-republish window stretched
  kShardKill = 7,      ///< fleet shard torn down mid-traffic
  kShardRestart = 8,   ///< killed shard rejoins (empty cache)
};

inline constexpr int kFaultPointCount = 9;

/// Human-readable name ("artifact_read", "sweep_compute", ...).
const char* fault_point_name(FaultPoint point);

/// Per-point probabilities and base delays. All probabilities default to
/// zero: a default-constructed injector never fires.
struct FaultOptions {
  std::uint64_t seed = 2025;

  double artifact_read_failure = 0.0;  ///< P(load throws)
  double sweep_delay = 0.0;            ///< P(sweep is slowed)
  double sweep_delay_ms = 10.0;        ///< base sweep slowdown
  double worker_stall = 0.0;           ///< P(worker stalls)
  double worker_stall_ms = 5.0;        ///< base stall duration
  double cache_shard_hold = 0.0;       ///< P(shard lock held longer)
  double cache_shard_hold_ms = 2.0;    ///< base extra hold time
  double report_ingest = 0.0;          ///< P(report ingestion delayed)
  double report_ingest_ms = 2.0;       ///< base ingestion delay
  double refit_stall = 0.0;            ///< P(background refit stalls)
  double refit_stall_ms = 20.0;        ///< base refit stall
  double promotion_race = 0.0;         ///< P(promotion window stretched)
  double promotion_race_ms = 10.0;     ///< base promotion delay
  double shard_kill = 0.0;             ///< P(fleet shard killed); fires, no delay
  double shard_restart = 0.0;          ///< P(killed shard restarted)
};

/// Seeded, thread-safe fault source. fire()/maybe_delay() consume one
/// arrival at the point; the verdict for arrival N is deterministic.
class FaultInjector {
 public:
  /// All probabilities zero: never fires, near-zero cost.
  FaultInjector() = default;

  explicit FaultInjector(FaultOptions options);

  /// True if any injection point has a non-zero probability.
  bool enabled() const { return enabled_; }

  /// Consumes one arrival at `point`; true if a fault fires. The caller
  /// turns `true` into the point's failure mode (e.g. throwing).
  bool fire(FaultPoint point);

  /// Consumes one arrival at `point`; on a fault, sleeps for the point's
  /// jittered delay and returns it in ms (0.0 when nothing fired).
  double maybe_delay(FaultPoint point);

  /// The configured probability / base delay of a point.
  double probability(FaultPoint point) const;
  double base_delay_ms(FaultPoint point) const;

  /// Arrivals consumed / faults fired at a point so far.
  std::uint64_t arrivals(FaultPoint point) const;
  std::uint64_t injected(FaultPoint point) const;

  const FaultOptions& options() const { return options_; }

  /// The deterministic uniform draw in [0, 1) behind arrival `arrival` at
  /// `point` (salt 0 decides fire-or-not, salt 1 jitters the delay).
  /// Exposed so tests can predict a schedule without consuming arrivals.
  static double unit_draw(std::uint64_t seed, FaultPoint point,
                          std::uint64_t arrival, std::uint64_t salt = 0);

  /// The jittered delay (ms) arrival `arrival` at `point` would sleep
  /// under `options`, or 0.0 if the arrival does not fire. Pure function:
  /// the whole fault schedule can be reconstructed from the options alone.
  static double delay_for(const FaultOptions& options, FaultPoint point,
                          std::uint64_t arrival);

 private:
  FaultOptions options_{};
  bool enabled_ = false;
  std::atomic<std::uint64_t> arrivals_[kFaultPointCount] = {};
  std::atomic<std::uint64_t> injected_[kFaultPointCount] = {};
};

}  // namespace ccpred::serve
