#pragma once

/// \file kernel_ridge.hpp
/// Kernel ridge regression (paper §3.1 "KR"): ridge regression in the
/// feature space induced by a kernel; dual coefficients from the
/// regularized Gram system (K + alpha I) a = y.

#include <memory>
#include <string>
#include <vector>

#include "ccpred/core/kernels.hpp"
#include "ccpred/core/regressor.hpp"
#include "ccpred/data/scaler.hpp"
#include "ccpred/linalg/cholesky.hpp"

namespace ccpred::ml {

/// Parameters: "alpha" (> 0), "gamma" (RBF width), "kernel" (0 = rbf,
/// 1 = poly, 2 = linear), "degree" (poly only).
class KernelRidgeRegression : public Regressor {
 public:
  explicit KernelRidgeRegression(Kernel kernel = {}, double alpha = 1.0);

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const linalg::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return fitted_; }

  const Kernel& kernel() const { return kernel_; }

  /// The Cholesky factor of (K + alpha I) kept from the last fit — repeated
  /// set_params + refit during grid search rebuilds the Gram matrix from
  /// the cached squared-distance matrix instead of recomputing it.
  const linalg::Cholesky* factorization() const { return chol_.get(); }

 private:
  Kernel kernel_;
  double alpha_;
  bool fitted_ = false;
  data::StandardScaler scaler_;
  data::TargetScaler y_scaler_;
  linalg::Matrix x_train_;      // standardized training features
  linalg::Matrix dist2_;        // cached squared distances (RBF refits)
  std::vector<double> dual_;    // dual coefficients
  std::unique_ptr<linalg::Cholesky> chol_;  // factor of K + alpha I
};

}  // namespace ccpred::ml
