#include "ccpred/core/compiled_ensemble.hpp"

#include <algorithm>
#include <limits>

#include "ccpred/common/error.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/random_forest.hpp"

namespace ccpred::ml {

namespace {
/// Rows per block. The dominant cost of batch prediction is streaming the
/// flattened ensemble (which exceeds L2 for paper-sized models) once per
/// block, so the block is made large: the row data, index and accumulator
/// scratch (~44 bytes/row) still fit comfortably in L2 while the ensemble
/// is re-streamed n_rows / kRowBlock times instead of per row.
constexpr std::size_t kRowBlock = 4096;
}  // namespace

CompiledEnsemble CompiledEnsemble::flatten(
    const std::vector<DecisionTreeRegressor>& trees) {
  CCPRED_CHECK_MSG(!trees.empty(), "cannot compile an empty ensemble");
  CompiledEnsemble ce;
  std::size_t total_nodes = 0;
  for (const auto& tree : trees) total_nodes += tree.node_count();
  ce.nodes_.reserve(total_nodes);
  ce.feature_.reserve(total_nodes);
  ce.value_.reserve(total_nodes);
  ce.roots_.reserve(trees.size());
  ce.depths_.reserve(trees.size());

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::int32_t> order;   // source indices in BFS order
  std::vector<std::int32_t> newidx;  // source index -> flat index
  for (const auto& tree : trees) {
    const auto& src = tree.nodes();
    const auto offset = static_cast<std::int32_t>(ce.nodes_.size());
    ce.roots_.push_back(offset);
    ce.depths_.push_back(tree.depth());

    // Breadth-first renumbering: a parent enqueues left then right, so
    // siblings land adjacent and the top levels — shared by every row's
    // descent — pack into few cache lines.
    order.assign(1, 0);
    order.reserve(src.size());
    newidx.resize(src.size());
    for (std::size_t qi = 0; qi < order.size(); ++qi) {
      const auto& node = src[static_cast<std::size_t>(order[qi])];
      newidx[static_cast<std::size_t>(order[qi])] =
          offset + static_cast<std::int32_t>(qi);
      if (!node.is_leaf()) {
        order.push_back(node.left);
        order.push_back(node.right);
      }
    }
    for (std::size_t qi = 0; qi < order.size(); ++qi) {
      const auto& node = src[static_cast<std::size_t>(order[qi])];
      const auto self = static_cast<std::int32_t>(ce.nodes_.size());
      ce.feature_.push_back(node.feature);
      ce.value_.push_back(node.value);
      // Leaves absorb into themselves with an always-true +inf compare, so
      // descent needs no termination branch. BFS numbering put siblings
      // adjacent: right child = left child + 1, no field needed.
      if (node.is_leaf()) {
        ce.nodes_.push_back(TravNode{kInf, 0, self});
      } else {
        CCPRED_CHECK_MSG(
            newidx[static_cast<std::size_t>(node.right)] ==
                newidx[static_cast<std::size_t>(node.left)] + 1,
            "BFS numbering must place siblings adjacently");
        ce.nodes_.push_back(
            TravNode{node.threshold, node.feature,
                     newidx[static_cast<std::size_t>(node.left)]});
      }
    }
  }
  return ce;
}

CompiledEnsemble CompiledEnsemble::compile(
    const GradientBoostingRegressor& model) {
  CCPRED_CHECK_MSG(model.is_fitted(), "cannot compile an unfitted model");
  CompiledEnsemble ce = flatten(model.stages());
  ce.bias_ = model.base_prediction();
  ce.scale_ = model.learning_rate();
  ce.mean_ = false;
  return ce;
}

CompiledEnsemble CompiledEnsemble::compile(const RandomForestRegressor& model) {
  CCPRED_CHECK_MSG(model.is_fitted(), "cannot compile an unfitted model");
  CompiledEnsemble ce = flatten(model.trees());
  ce.mean_ = true;
  return ce;
}

void CompiledEnsemble::predict_batch(const double* x, std::size_t n_rows,
                                     std::size_t n_cols, double* out) const {
  // The fixed-depth kernel's +inf leaf self-loop assumes comparisons with
  // NaN never happen (a NaN would drift off the leaf). Scan once — NaN is
  // the only hazard, infinities compare like the walk — and route such
  // batches through the termination-checked per-row path instead.
  bool has_nan = false;
  for (std::size_t i = 0; i < n_rows * n_cols && !has_nan; ++i) {
    has_nan = x[i] != x[i];
  }
  if (has_nan) {
    for (std::size_t i = 0; i < n_rows; ++i) out[i] = predict_row(x + i * n_cols);
    return;
  }

  const TravNode* nodes = nodes_.data();
  const double* value = value_.data();

  std::vector<std::int32_t> idx(std::min(kRowBlock, n_rows));
  std::vector<double> acc(std::min(kRowBlock, n_rows));
  for (std::size_t block = 0; block < n_rows; block += kRowBlock) {
    const std::size_t bn = std::min(kRowBlock, n_rows - block);
    std::fill(acc.begin(), acc.begin() + static_cast<std::ptrdiff_t>(bn), 0.0);
    const double* base = x + block * n_cols;
    // Tree-major over the block: one tree's nodes stay hot while every row
    // of the block descends it. The descent is level-synchronous — all
    // rows advance one step per pass for the tree's full depth (leaves
    // self-absorb), so the per-row node chases are independent and overlap
    // instead of serializing behind one row's dependent loads. Leaf values
    // accumulate per row in tree order, matching the walk bit-for-bit.
    const auto& ops = simd::ops();
    for (std::size_t t = 0; t < roots_.size(); ++t) {
      std::fill(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(bn),
                roots_[t]);
      for (std::int32_t d = 0; d < depths_[t]; ++d) {
        ops.ensemble_step(nodes, base, bn, n_cols, idx.data());
      }
      for (std::size_t i = 0; i < bn; ++i) acc[i] += value[idx[i]];
    }
    double* o = out + block;
    if (mean_) {
      const auto count = static_cast<double>(roots_.size());
      for (std::size_t i = 0; i < bn; ++i) o[i] = acc[i] / count;
    } else {
      for (std::size_t i = 0; i < bn; ++i) o[i] = bias_ + scale_ * acc[i];
    }
  }
}

std::vector<double> CompiledEnsemble::predict_batch(
    const linalg::Matrix& x) const {
  std::vector<double> out(x.rows());
  predict_batch(x.data(), x.rows(), x.cols(), out.data());
  return out;
}

double CompiledEnsemble::predict_row(const double* row) const {
  double acc = 0.0;
  for (const std::int32_t root : roots_) {
    std::int32_t idx = root;
    // Terminates on feature_ like the reference walk, so a NaN feature
    // value takes the right child at every internal node — exactly the
    // walk's comparison semantics.
    while (feature_[idx] >= 0) {
      const TravNode& nd = nodes_[idx];
      idx = nd.left + static_cast<std::int32_t>(!(row[nd.tfeat] <= nd.threshold));
    }
    acc += value_[idx];
  }
  if (mean_) return acc / static_cast<double>(roots_.size());
  return bias_ + scale_ * acc;
}

}  // namespace ccpred::ml
