#include "ccpred/serve/event_loop.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#include "ccpred/common/error.hpp"
#include "ccpred/serve/wire.hpp"

namespace ccpred::serve {
namespace {

// epoll user-data tags for the two non-connection fds.
constexpr std::uint64_t kListenTag = ~std::uint64_t{0};
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0} - 1;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CCPRED_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "event_loop: fcntl(O_NONBLOCK) failed: "
                       << std::strerror(errno));
}

}  // namespace

/// One worker-finished response on its way back to the loop thread.
struct Completed {
  std::uint64_t conn_id;
  std::uint64_t seq;
  std::string payload;  ///< already rendered (JSON line or wire frame)
};

/// The worker->loop hand-off point. Shared (via shared_ptr) between the
/// loop and every in-flight completion callback, and usable after the
/// EventLoopServer is gone: the destructor marks it closed under the
/// mutex, after which push() drops payloads instead of touching the
/// eventfd. The eventfd write happens under the same mutex, so it can
/// never race the close.
struct EventLoopServer::Sink {
  std::mutex mutex;
  std::vector<Completed> queue;
  int event_fd = -1;
  bool closed = false;

  void push(std::uint64_t conn_id, std::uint64_t seq, std::string payload) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (closed) return;
    queue.push_back(Completed{conn_id, seq, std::move(payload)});
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd, &one, sizeof one);  // never blocks for counts < 2^64
  }

  std::vector<Completed> drain() {
    const std::lock_guard<std::mutex> lock(mutex);
    return std::exchange(queue, {});
  }
};

/// Loop-thread-owned connection state. Workers never see this struct —
/// they only know (conn_id, seq).
struct EventLoopServer::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  std::string in;   ///< unparsed bytes
  std::string out;  ///< rendered responses awaiting the socket
  std::size_t out_sent = 0;  ///< prefix of `out` already written

  std::uint64_t next_seq = 0;    ///< next request sequence to assign
  std::uint64_t next_flush = 0;  ///< next sequence owed to the client
  /// Completions that arrived ahead of their turn, keyed by sequence.
  std::map<std::uint64_t, std::string> parked;

  bool peer_closed = false;  ///< read side saw EOF
  bool fatal = false;        ///< protocol error: close once `out` drains
  bool dead = false;         ///< retired; reaped at the end of the batch

  bool idle() const { return next_seq == next_flush && out_sent == out.size(); }
};

std::size_t EventLoopOptions::effective_inbuf_bytes() const {
  if (max_inbuf_bytes > 0) return max_inbuf_bytes;
  // Derived default: one unterminated line plus two max-size wire frames
  // of lookahead — the pre-PR-10 hardcoded formula.
  return max_line_bytes + wire::kMaxFramePayload * 2;
}

EventLoopServer::EventLoopServer(Dispatch dispatch, BatchDispatch batch_dispatch,
                                 EventLoopOptions options)
    : dispatch_(std::move(dispatch)),
      batch_dispatch_(std::move(batch_dispatch)),
      options_(options) {
  CCPRED_CHECK_MSG(dispatch_ != nullptr, "event_loop: dispatch is required");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CCPRED_CHECK_MSG(listen_fd_ >= 0,
                   "event_loop: socket() failed: " << std::strerror(errno));
  const int yes = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  CCPRED_CHECK_MSG(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
      "event_loop: bind to port " << options_.port
                                  << " failed: " << std::strerror(errno));
  const int backlog = options_.backlog < 0 ? SOMAXCONN : options_.backlog;
  CCPRED_CHECK_MSG(::listen(listen_fd_, backlog) == 0,
                   "event_loop: listen() failed: " << std::strerror(errno));
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);

  epoll_fd_ = ::epoll_create1(0);
  CCPRED_CHECK_MSG(epoll_fd_ >= 0, "event_loop: epoll_create1 failed: "
                                       << std::strerror(errno));
  event_fd_ = ::eventfd(0, EFD_NONBLOCK);
  CCPRED_CHECK_MSG(event_fd_ >= 0,
                   "event_loop: eventfd failed: " << std::strerror(errno));
  sink_ = std::make_shared<Sink>();
  sink_->event_fd = event_fd_;

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenTag;
  CCPRED_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
                   "event_loop: epoll_ctl(listen) failed");
  ev.data.u64 = kWakeTag;
  CCPRED_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) == 0,
                   "event_loop: epoll_ctl(eventfd) failed");

  loop_thread_ = std::thread([this] { loop(); });
}

EventLoopServer::~EventLoopServer() {
  stop_.store(true, std::memory_order_release);
  {
    // Wake the loop through the sink so the write cannot race closed-fd
    // teardown below.
    const std::lock_guard<std::mutex> lock(sink_->mutex);
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, sizeof one);
  }
  loop_thread_.join();
  for (auto& [id, conn] : conns_) ::close(conn->fd);
  conns_.clear();
  {
    // After this block any straggling completion is dropped in push().
    const std::lock_guard<std::mutex> lock(sink_->mutex);
    sink_->closed = true;
  }
  ::close(event_fd_);
  ::close(listen_fd_);
  ::close(epoll_fd_);
}

EventLoopStats EventLoopServer::stats() const {
  EventLoopStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_closed = closed_.load(std::memory_order_relaxed);
  s.requests_in = requests_in_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.lines_in = lines_in_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.overflow_closes = overflow_closes_.load(std::memory_order_relaxed);
  return s;
}

EventLoopServer::Connection* EventLoopServer::find(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second->dead) return nullptr;
  return it->second.get();
}

void EventLoopServer::retire(Connection* conn) {
  if (conn->dead) return;
  conn->dead = true;
  closed_.fetch_add(1, std::memory_order_relaxed);
  retired_.push_back(conn->id);
}

void EventLoopServer::reap() {
  for (const std::uint64_t id : retired_) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
    ::close(it->second->fd);
    conns_.erase(it);
  }
  retired_.clear();
}

void EventLoopServer::loop() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself failed; shut the loop down
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        accept_ready();
        continue;
      }
      if (tag == kWakeTag) {
        wake_ready();
        continue;
      }
      Connection* conn = find(tag);
      if (conn == nullptr) continue;  // retired earlier this batch
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        retire(conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) try_write(conn);
      if (!conn->dead && (events[i].events & EPOLLIN) != 0) {
        conn_readable(conn);
      }
    }
    reap();
  }
}

void EventLoopServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // transient resource exhaustion: retry on the next edge
    }
    const int yes = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void EventLoopServer::wake_ready() {
  std::uint64_t drained = 0;
  while (::read(event_fd_, &drained, sizeof drained) > 0) {
  }
  for (Completed& done : sink_->drain()) {
    Connection* conn = find(done.conn_id);
    if (conn == nullptr) continue;  // client left before its answer
    enqueue_response(conn, done.seq, std::move(done.payload));
  }
}

void EventLoopServer::conn_readable(Connection* conn) {
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof buf);
    if (n > 0) {
      conn->in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      conn->peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    retire(conn);
    return;
  }
  parse_input(conn);
  if (!conn->dead && conn->peer_closed && conn->idle()) retire(conn);
}

void EventLoopServer::parse_input(Connection* conn) {
  if (conn->fatal) {
    // Already answering a stream-level error; everything further is noise.
    conn->in.clear();
    return;
  }
  std::size_t pos = 0;
  const std::uint64_t conn_id = conn->id;
  while (!conn->dead && pos < conn->in.size()) {
    // Inter-message whitespace (trailing CRLFs, netcat blank lines).
    const char first = conn->in[pos];
    if (first == '\n' || first == '\r' || first == ' ' || first == '\t') {
      ++pos;
      continue;
    }
    const auto* data =
        reinterpret_cast<const unsigned char*>(conn->in.data()) + pos;
    const std::size_t avail = conn->in.size() - pos;

    if (wire::starts_frame(static_cast<unsigned char>(first))) {
      wire::FrameHeader header;
      std::string why;
      const wire::FrameStatus st =
          wire::probe_frame(data, avail, &header, &why);
      if (st == wire::FrameStatus::kNeedMore) break;
      if (st == wire::FrameStatus::kBad) {
        // Unframeable garbage: the stream offset is unrecoverable, so
        // answer once and close after the write drains.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        conn->fatal = true;
        enqueue_response(
            conn, conn->next_seq++,
            wire::encode_response_frame({error_response(why)}));
        pos = conn->in.size();
        break;
      }
      if (avail < wire::kHeaderBytes + header.payload_bytes) break;
      frames_in_.fetch_add(1, std::memory_order_relaxed);
      const unsigned char* payload = data + wire::kHeaderBytes;
      pos += wire::kHeaderBytes + header.payload_bytes;
      std::vector<Request> batch;
      try {
        batch = wire::decode_request_frame(header, payload);
      } catch (const Error& e) {
        // The frame boundary held, so the connection survives: answer the
        // whole frame with one error response and keep parsing.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        enqueue_response(
            conn, conn->next_seq++,
            wire::encode_response_frame({error_response(e.what())}));
        continue;
      }
      requests_in_.fetch_add(batch.size(), std::memory_order_relaxed);
      const std::uint64_t seq = conn->next_seq++;
      if (batch.empty()) {
        enqueue_response(conn, seq, wire::encode_response_frame({}));
        continue;
      }
      const std::shared_ptr<Sink> sink = sink_;
      if (batch_dispatch_ != nullptr) {
        batch_dispatch_(std::move(batch),
                        [sink, conn_id, seq](std::vector<Response> rs) {
                          sink->push(conn_id, seq,
                                     wire::encode_response_frame(rs));
                        });
      } else {
        // Fan out per record; the last completion encodes the frame.
        struct FrameJob {
          std::shared_ptr<Sink> sink;
          std::uint64_t conn_id, seq;
          std::vector<Response> slots;
          std::atomic<std::size_t> remaining;
        };
        auto job = std::make_shared<FrameJob>();
        job->sink = sink;
        job->conn_id = conn_id;
        job->seq = seq;
        job->slots.resize(batch.size());
        job->remaining.store(batch.size(), std::memory_order_relaxed);
        for (std::size_t r = 0; r < batch.size(); ++r) {
          dispatch_(std::move(batch[r]), [job, r](Response resp) {
            job->slots[r] = std::move(resp);
            if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
              job->sink->push(job->conn_id, job->seq,
                              wire::encode_response_frame(job->slots));
            }
          });
        }
      }
      continue;
    }

    // JSON line.
    const std::size_t nl = conn->in.find('\n', pos);
    if (nl == std::string::npos) {
      if (avail > options_.max_line_bytes) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        conn->fatal = true;
        enqueue_response(conn, conn->next_seq++,
                         format_response(error_response(
                             "protocol: line exceeds " +
                             std::to_string(options_.max_line_bytes) +
                             " bytes")) +
                             "\n");
        pos = conn->in.size();
      }
      break;
    }
    std::size_t end = nl;
    while (end > pos && conn->in[end - 1] == '\r') --end;
    const std::string line = conn->in.substr(pos, end - pos);
    pos = nl + 1;
    lines_in_.fetch_add(1, std::memory_order_relaxed);
    requests_in_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t seq = conn->next_seq++;
    Request req;
    try {
      req = parse_request(line);
    } catch (const Error& e) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      enqueue_response(conn, seq,
                       format_response(error_response(e.what())) + "\n");
      continue;
    }
    const std::shared_ptr<Sink> sink = sink_;
    dispatch_(std::move(req), [sink, conn_id, seq](Response resp) {
      sink->push(conn_id, seq, format_response(resp) + "\n");
    });
  }
  if (conn->dead) return;
  conn->in.erase(0, pos);
  if (conn->in.size() > options_.effective_inbuf_bytes()) {
    // Defense in depth: nothing parseable should ever grow this far.
    overflow_closes_.fetch_add(1, std::memory_order_relaxed);
    retire(conn);
  }
}

void EventLoopServer::enqueue_response(Connection* conn, std::uint64_t seq,
                                       std::string payload) {
  conn->parked.emplace(seq, std::move(payload));
  flush_ready(conn);
}

void EventLoopServer::flush_ready(Connection* conn) {
  auto it = conn->parked.begin();
  while (it != conn->parked.end() && it->first == conn->next_flush) {
    conn->out.append(it->second);
    it = conn->parked.erase(it);
    ++conn->next_flush;
  }
  if (conn->out.size() - conn->out_sent > options_.max_outbuf_bytes) {
    overflow_closes_.fetch_add(1, std::memory_order_relaxed);
    retire(conn);
    return;
  }
  try_write(conn);
}

void EventLoopServer::try_write(Connection* conn) {
  if (conn->dead) return;
  while (conn->out_sent < conn->out.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE
    // (retire the connection), not SIGPIPE (kill the process).
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_sent,
               conn->out.size() - conn->out_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    retire(conn);
    return;
  }
  // Fully flushed: reclaim the buffer and close if this stream is done.
  conn->out.clear();
  conn->out_sent = 0;
  if (conn->fatal || (conn->peer_closed && conn->idle())) retire(conn);
}

}  // namespace ccpred::serve
