#include "ccpred/core/svr.hpp"

#include <algorithm>
#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/linalg/blas.hpp"

namespace ccpred::ml {

SupportVectorRegression::SupportVectorRegression(double c, double epsilon,
                                                 double gamma)
    : c_(c), epsilon_(epsilon) {
  CCPRED_CHECK_MSG(c > 0.0, "SVR C must be > 0");
  CCPRED_CHECK_MSG(epsilon >= 0.0, "SVR epsilon must be >= 0");
  CCPRED_CHECK_MSG(gamma > 0.0, "SVR gamma must be > 0");
  kernel_.type = KernelType::kRbf;
  kernel_.gamma = gamma;
}

void SupportVectorRegression::fit(const linalg::Matrix& x,
                                  const std::vector<double>& y) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot fit on empty data");
  x_train_ = scaler_.fit_transform(x);
  const auto yz = y_scaler_.fit_transform(y);
  const std::size_t n = x_train_.rows();

  // K~ = K + 1 absorbs the bias term.
  linalg::Matrix k = kernel_.gram_symmetric(x_train_);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) k(i, j) += 1.0;
  }

  beta_.assign(n, 0.0);
  std::vector<double> f(n, 0.0);  // f = K~ beta, kept incrementally

  sweeps_used_ = 0;
  for (int sweep = 0; sweep < max_sweeps_; ++sweep) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double kii = k(i, i);
      // Minimize 0.5*kii*b^2 + b*(f_i - kii*beta_i - y_i) + eps*|b| over b.
      const double s = f[i] - kii * beta_[i] - yz[i];
      double b;
      if (-s > epsilon_) {
        b = (-s - epsilon_) / kii;
      } else if (-s < -epsilon_) {
        b = (-s + epsilon_) / kii;
      } else {
        b = 0.0;
      }
      b = std::clamp(b, -c_, c_);
      const double delta = b - beta_[i];
      if (delta != 0.0) {
        const double* ki = k.row_ptr(i);
        for (std::size_t j = 0; j < n; ++j) f[j] += delta * ki[j];
        beta_[i] = b;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    ++sweeps_used_;
    if (max_delta < tol_) break;
  }
  fitted_ = true;
}

std::vector<double> SupportVectorRegression::predict(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(fitted_, "SupportVectorRegression::predict before fit");
  const linalg::Matrix z = scaler_.transform(x);
  const linalg::Matrix k = kernel_.gram(z, x_train_);
  std::vector<double> out(z.rows(), 0.0);
  double beta_sum = 0.0;
  for (double b : beta_) beta_sum += b;
  for (std::size_t i = 0; i < z.rows(); ++i) {
    const double* ki = k.row_ptr(i);
    double s = 0.0;
    for (std::size_t j = 0; j < beta_.size(); ++j) s += ki[j] * beta_[j];
    out[i] = y_scaler_.inverse_one(s + beta_sum);  // +1 kernel offset = bias
  }
  return out;
}

std::size_t SupportVectorRegression::support_vector_count() const {
  std::size_t count = 0;
  for (double b : beta_) {
    if (std::abs(b) > 1e-12) ++count;
  }
  return count;
}

std::unique_ptr<Regressor> SupportVectorRegression::clone() const {
  auto copy =
      std::make_unique<SupportVectorRegression>(c_, epsilon_, kernel_.gamma);
  copy->max_sweeps_ = max_sweeps_;
  copy->tol_ = tol_;
  return copy;
}

const std::string& SupportVectorRegression::name() const {
  static const std::string n = "SVR";
  return n;
}

void SupportVectorRegression::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "C") {
      CCPRED_CHECK_MSG(value > 0.0, "C must be > 0");
      c_ = value;
    } else if (key == "epsilon") {
      CCPRED_CHECK_MSG(value >= 0.0, "epsilon must be >= 0");
      epsilon_ = value;
    } else if (key == "gamma") {
      CCPRED_CHECK_MSG(value > 0.0, "gamma must be > 0");
      kernel_.gamma = value;
    } else if (key == "max_sweeps") {
      max_sweeps_ = static_cast<int>(std::lround(value));
      CCPRED_CHECK_MSG(max_sweeps_ > 0, "max_sweeps must be > 0");
    } else if (key == "tol") {
      CCPRED_CHECK_MSG(value > 0.0, "tol must be > 0");
      tol_ = value;
    } else {
      throw Error("SupportVectorRegression: unknown parameter '" + key + "'");
    }
  }
}

}  // namespace ccpred::ml
