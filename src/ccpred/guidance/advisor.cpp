#include "ccpred/guidance/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ccpred/common/error.hpp"

namespace ccpred::guide {

namespace {

/// A NaN/Inf prediction would silently win or lose every comparison below,
/// turning one bad model output into a confidently wrong recommendation —
/// reject the sweep instead and name the offending configuration.
void check_sweep_finite(const std::vector<SweepPoint>& sweep) {
  for (const auto& pt : sweep) {
    CCPRED_CHECK_MSG(std::isfinite(pt.predicted_time_s) &&
                         std::isfinite(pt.predicted_node_hours),
                     "non-finite prediction (time="
                         << pt.predicted_time_s
                         << ", node_hours=" << pt.predicted_node_hours
                         << ") for O=" << pt.config.o << " V=" << pt.config.v
                         << " nodes=" << pt.config.nodes
                         << " tile=" << pt.config.tile
                         << "; refusing to recommend from a corrupt sweep");
  }
}

}  // namespace

std::vector<SweepPoint> pareto_front(const std::vector<SweepPoint>& sweep) {
  std::vector<SweepPoint> sorted = sweep;
  std::sort(sorted.begin(), sorted.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              if (a.predicted_time_s != b.predicted_time_s) {
                return a.predicted_time_s < b.predicted_time_s;
              }
              return a.predicted_node_hours < b.predicted_node_hours;
            });
  std::vector<SweepPoint> front;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& pt : sorted) {
    if (pt.predicted_node_hours < best_cost) {
      front.push_back(pt);
      best_cost = pt.predicted_node_hours;
    }
  }
  return front;
}

Advisor::Advisor(const ml::Regressor& model,
                 const sim::CcsdSimulator& simulator)
    : model_(model), simulator_(simulator) {
  CCPRED_CHECK_MSG(model.is_fitted(), "Advisor needs a fitted model");
}

namespace {

/// Enumerates the feasible (nodes, tile) grid for one problem; throws when
/// nothing fits the machine.
std::vector<sim::RunConfig> feasible_candidates(
    const sim::CcsdSimulator& simulator, int o, int v) {
  CCPRED_CHECK_MSG(o > 0 && v > 0, "orbital counts must be positive");
  std::vector<sim::RunConfig> candidates;
  for (int n : simulator.machine().node_menu()) {
    for (int t : simulator.machine().tile_menu()) {
      const sim::RunConfig cfg{.o = o, .v = v, .nodes = n, .tile = t};
      if (simulator.feasible(cfg)) candidates.push_back(cfg);
    }
  }
  CCPRED_CHECK_MSG(!candidates.empty(), "no feasible configuration for O="
                                            << o << " V=" << v);
  return candidates;
}

/// Predictions -> sweep points for one problem's candidate slice.
std::vector<SweepPoint> sweep_from_predictions(
    const std::vector<sim::RunConfig>& candidates,
    const std::vector<double>& times, std::size_t offset) {
  std::vector<SweepPoint> sweep;
  sweep.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    SweepPoint pt;
    pt.config = candidates[i];
    pt.predicted_time_s = times[offset + i];
    pt.predicted_node_hours =
        sim::CcsdSimulator::node_hours(candidates[i], times[offset + i]);
    sweep.push_back(pt);
  }
  return sweep;
}

}  // namespace

Recommendation Advisor::recommend(int o, int v, Objective objective) const {
  const std::vector<sim::RunConfig> candidates =
      feasible_candidates(simulator_, o, v);

  // One batched prediction over the whole sweep.
  linalg::Matrix x(candidates.size(), data::kNumFeatures);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    x(i, data::kFeatO) = candidates[i].o;
    x(i, data::kFeatV) = candidates[i].v;
    x(i, data::kFeatNodes) = candidates[i].nodes;
    x(i, data::kFeatTile) = candidates[i].tile;
  }
  const auto times = model_.predict(x);
  return from_sweep(sweep_from_predictions(candidates, times, 0), objective);
}

std::vector<Recommendation> Advisor::recommend_batch(
    const std::vector<std::pair<int, int>>& problems,
    Objective objective) const {
  // Enumerate every problem's grid first so the matrix is sized once.
  std::vector<std::vector<sim::RunConfig>> grids;
  grids.reserve(problems.size());
  std::size_t rows = 0;
  for (const auto& [o, v] : problems) {
    grids.push_back(feasible_candidates(simulator_, o, v));
    rows += grids.back().size();
  }

  linalg::Matrix x(rows, data::kNumFeatures);
  std::size_t row = 0;
  for (const auto& grid : grids) {
    for (const auto& cfg : grid) {
      x(row, data::kFeatO) = cfg.o;
      x(row, data::kFeatV) = cfg.v;
      x(row, data::kFeatNodes) = cfg.nodes;
      x(row, data::kFeatTile) = cfg.tile;
      ++row;
    }
  }
  const auto times = model_.predict(x);

  std::vector<Recommendation> out;
  out.reserve(problems.size());
  std::size_t offset = 0;
  for (const auto& grid : grids) {
    out.push_back(
        from_sweep(sweep_from_predictions(grid, times, offset), objective));
    offset += grid.size();
  }
  return out;
}

Recommendation Advisor::from_sweep(std::vector<SweepPoint> sweep,
                                   Objective objective) {
  Recommendation rec;
  rec.objective = objective;
  rec.sweep = std::move(sweep);
  const SweepPoint& pt = pick_best(rec.sweep, objective);
  rec.config = pt.config;
  rec.predicted_time_s = pt.predicted_time_s;
  rec.predicted_node_hours = pt.predicted_node_hours;
  return rec;
}

const SweepPoint& Advisor::pick_best(const std::vector<SweepPoint>& sweep,
                                     Objective objective) {
  CCPRED_CHECK_MSG(!sweep.empty(), "cannot recommend from an empty sweep");
  check_sweep_finite(sweep);
  const SweepPoint* best = nullptr;
  double best_value = 0.0;
  for (const auto& pt : sweep) {
    const double value = objective == Objective::kShortestTime
                             ? pt.predicted_time_s
                             : pt.predicted_node_hours;
    if (best == nullptr || value < best_value) {
      best_value = value;
      best = &pt;
    }
  }
  return *best;
}

Recommendation Advisor::fastest_within_budget(int o, int v,
                                               double max_node_hours) const {
  // One recommend() sweep, then the constraint filter on the cached points.
  return fastest_within_budget(recommend(o, v, Objective::kShortestTime),
                               max_node_hours);
}

Recommendation Advisor::fastest_within_budget(const Recommendation& base,
                                              double max_node_hours) {
  const SweepPoint& pt = pick_within_budget(base, max_node_hours);
  Recommendation rec = base;
  rec.objective = Objective::kShortestTime;
  rec.config = pt.config;
  rec.predicted_time_s = pt.predicted_time_s;
  rec.predicted_node_hours = pt.predicted_node_hours;
  return rec;
}

const SweepPoint& Advisor::pick_within_budget(const Recommendation& base,
                                              double max_node_hours) {
  CCPRED_CHECK_MSG(max_node_hours > 0.0, "budget must be positive");
  check_sweep_finite(base.sweep);
  const SweepPoint* best = nullptr;
  double best_time = 0.0;
  for (const auto& pt : base.sweep) {
    if (pt.predicted_node_hours > max_node_hours) continue;
    if (best == nullptr || pt.predicted_time_s < best_time) {
      best_time = pt.predicted_time_s;
      best = &pt;
    }
  }
  CCPRED_CHECK_MSG(best != nullptr, "no swept configuration for O="
                                        << base.config.o
                                        << " V=" << base.config.v
                                        << " fits within " << max_node_hours
                                        << " node-hours");
  return *best;
}

}  // namespace ccpred::guide
