#include "ccpred/core/random_search.hpp"

#include "ccpred/common/error.hpp"

namespace ccpred::ml {

SearchResult random_search(const Regressor& prototype, const ParamSpace& space,
                           int n_iter, const linalg::Matrix& x,
                           const std::vector<double>& y,
                           const SearchOptions& options) {
  CCPRED_CHECK_MSG(n_iter > 0, "random search needs n_iter > 0");
  Rng rng(options.seed ^ 0x9d2c5680ULL);
  std::vector<ParamMap> candidates;
  candidates.reserve(static_cast<std::size_t>(n_iter));
  for (int i = 0; i < n_iter; ++i) candidates.push_back(sample_params(space, rng));
  return detail::evaluate_candidates(prototype, candidates, x, y, options);
}

}  // namespace ccpred::ml
