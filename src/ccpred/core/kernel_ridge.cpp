#include "ccpred/core/kernel_ridge.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/linalg/blas.hpp"
#include "ccpred/linalg/solve.hpp"

namespace ccpred::ml {

KernelRidgeRegression::KernelRidgeRegression(Kernel kernel, double alpha)
    : kernel_(kernel), alpha_(alpha) {
  CCPRED_CHECK_MSG(alpha > 0.0, "kernel ridge alpha must be > 0");
}

void KernelRidgeRegression::fit(const linalg::Matrix& x,
                                const std::vector<double>& y) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot fit on empty data");
  x_train_ = scaler_.fit_transform(x);
  const auto yz = y_scaler_.fit_transform(y);
  linalg::Matrix k = kernel_.gram_symmetric(x_train_);
  k.add_diagonal(alpha_);
  dual_ = linalg::spd_solve_with_jitter(std::move(k), yz);
  fitted_ = true;
}

std::vector<double> KernelRidgeRegression::predict(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(fitted_, "KernelRidgeRegression::predict before fit");
  const linalg::Matrix z = scaler_.transform(x);
  const linalg::Matrix k = kernel_.gram(z, x_train_);
  auto out = linalg::gemv(k, dual_);
  for (auto& v : out) v = y_scaler_.inverse_one(v);
  return out;
}

std::unique_ptr<Regressor> KernelRidgeRegression::clone() const {
  return std::make_unique<KernelRidgeRegression>(kernel_, alpha_);
}

const std::string& KernelRidgeRegression::name() const {
  static const std::string n = "KR";
  return n;
}

void KernelRidgeRegression::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "alpha") {
      CCPRED_CHECK_MSG(value > 0.0, "alpha must be > 0");
      alpha_ = value;
    } else if (key == "gamma") {
      CCPRED_CHECK_MSG(value > 0.0, "gamma must be > 0");
      kernel_.gamma = value;
    } else if (key == "kernel") {
      const int k = static_cast<int>(std::lround(value));
      CCPRED_CHECK_MSG(k >= 0 && k <= 2, "kernel code must be 0..2");
      kernel_.type = static_cast<KernelType>(k);
    } else if (key == "degree") {
      kernel_.degree = static_cast<int>(std::lround(value));
    } else if (key == "coef0") {
      kernel_.coef0 = value;
    } else {
      throw Error("KernelRidgeRegression: unknown parameter '" + key + "'");
    }
  }
}

}  // namespace ccpred::ml
