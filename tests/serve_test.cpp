// Tests for the serving subsystem: LRU cache + latency histogram
// utilities, the line protocol, the artifact registry (fallback training
// and hot reload), and the server itself — including the concurrent-
// correctness property that any interleaving of requests produces the
// same recommendations as serial execution.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ccpred/common/error.hpp"
#include "ccpred/common/latency_histogram.hpp"
#include "ccpred/common/lru_cache.hpp"
#include "ccpred/common/rng.hpp"
#include "ccpred/common/strings.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/serialize.hpp"
#include "ccpred/guidance/advisor.hpp"
#include "ccpred/serve/event_loop.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/server.hpp"
#include "ccpred/serve/wire.hpp"
#include "ccpred/sim/solver.hpp"
#include "test_util.hpp"

namespace ccpred::serve {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ccpred_serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A small fitted GB on real campaign features (4 columns), fast to train.
ml::GradientBoostingRegressor campaign_gb(int stages = 15) {
  static const auto split = test::small_campaign(250);
  ml::GradientBoostingRegressor model(stages);
  model.fit(split.train.features(), split.train.targets());
  return model;
}

// ---------------------------------------------------------------- LruCache

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_EQ(cache.get(1).value(), 10);  // 1 is now most recent
  cache.put(3, 30);                     // evicts 2
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1).value(), 10);
  EXPECT_EQ(cache.get(3).value(), 30);
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(LruCacheTest, CountersTrackHitsAndMisses) {
  LruCache<int, int> cache(4);
  EXPECT_FALSE(cache.get(7).has_value());
  cache.put(7, 70);
  EXPECT_TRUE(cache.get(7).has_value());
  EXPECT_TRUE(cache.get(7).has_value());
  EXPECT_EQ(cache.counters().hits, 2u);
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.counters().hit_rate(), 2.0 / 3.0);
}

TEST(LruCacheTest, PutOverwritesAndRefreshes) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // overwrite refreshes recency, no eviction
  EXPECT_EQ(cache.size(), 2u);
  cache.put(3, 30);  // evicts 2, not 1
  EXPECT_EQ(cache.get(1).value(), 11);
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(LruCacheTest, ZeroCapacityRejected) {
  EXPECT_THROW((LruCache<int, int>(0)), Error);
}

// ------------------------------------------------------- LatencyHistogram

TEST(LatencyHistogramTest, QuantilesAreOrderedAndBracketed) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-4);  // 0.1 ms .. 100 ms
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Geometric buckets grow by 1.5x: quantiles are right within that factor.
  EXPECT_NEAR(p50, 0.050, 0.050 * 0.6);
  EXPECT_NEAR(p95, 0.095, 0.095 * 0.6);
  EXPECT_NEAR(h.mean(), 0.05005, 0.002);
}

TEST(LatencyHistogramTest, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  h.record(0.01);
  EXPECT_EQ(h.count(), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.record(1e-3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 4000u);
}

// ---------------------------------------------------------------- Protocol

TEST(ProtocolTest, ParsesFlatRecords) {
  const auto rec = parse_record(
      R"({"op":"stq","o":134,"v":951,"machine":"aurora","flag":true})");
  EXPECT_EQ(rec.at("op"), "stq");
  EXPECT_EQ(rec.at("o"), "134");
  EXPECT_EQ(rec.at("machine"), "aurora");
  EXPECT_EQ(rec.at("flag"), "true");
}

TEST(ProtocolTest, ParseRequestFillsTypedFields) {
  const auto req = parse_request(
      R"({"op":"budget","o":99,"v":718,"max_node_hours":2.5,"id":"q1"})");
  EXPECT_EQ(req.op, Op::kBudget);
  EXPECT_EQ(req.o, 99);
  EXPECT_EQ(req.v, 718);
  EXPECT_DOUBLE_EQ(req.max_node_hours, 2.5);
  EXPECT_EQ(req.id, "q1");
  EXPECT_TRUE(req.machine.empty());
}

TEST(ProtocolTest, MalformedInputsThrow) {
  EXPECT_THROW(parse_record("not json"), Error);
  EXPECT_THROW(parse_record(R"({"a":1)"), Error);          // unterminated
  EXPECT_THROW(parse_record(R"({"a":{"b":1}})"), Error);   // nested
  EXPECT_THROW(parse_record(R"({"a":1,"a":2})"), Error);   // duplicate
  EXPECT_THROW(parse_record(R"({"a":1} trailing)"), Error);
  EXPECT_THROW(parse_request(R"({"op":"warp","o":1,"v":2})"), Error);
  EXPECT_THROW(parse_request(R"({"op":"stq","o":1})"), Error);  // missing v
  EXPECT_THROW(parse_request(R"({"o":1,"v":2})"), Error);       // missing op
  EXPECT_THROW(parse_request(R"({"op":"stq","o":"x","v":2})"), Error);
}

TEST(ProtocolTest, ResponseRoundTripsThroughParseRecord) {
  Response r;
  r.ok = true;
  r.op = "stq";
  r.id = "a\"b";  // embedded quote must survive escaping
  r.has_recommendation = true;
  r.nodes = 110;
  r.tile = 90;
  r.time_s = 123.456;
  r.node_hours = 3.7718;
  r.model_version = 42;
  r.sweep_size = 480;
  const auto rec = parse_record(format_response(r));
  EXPECT_EQ(rec.at("ok"), "true");
  EXPECT_EQ(rec.at("id"), "a\"b");
  EXPECT_EQ(rec.at("nodes"), "110");
  EXPECT_DOUBLE_EQ(parse_double(rec.at("time_s")), 123.456);
  EXPECT_EQ(rec.at("model_version"), "42");
}

TEST(ProtocolTest, StatsRequestNeedsNoProblemSize) {
  const auto req = parse_request(R"({"op":"stats"})");
  EXPECT_EQ(req.op, Op::kStats);
}

// -------------------------------------------------------------- SweepCache

TEST(SweepCacheTest, StoresAndEvictsAcrossShards) {
  SweepCache cache(4, 2);
  const auto rec = std::make_shared<const guide::Recommendation>();
  for (int o = 1; o <= 8; ++o) {
    cache.put(SweepKey{"aurora", "gb", 1, o, o * 10}, rec);
  }
  EXPECT_LE(cache.size(), 4u);
  const auto counters = cache.counters();
  EXPECT_GE(counters.evictions, 4u);
  // Most recent key should still be resident.
  EXPECT_NE(cache.get(SweepKey{"aurora", "gb", 1, 8, 80}), nullptr);
}

TEST(SweepCacheTest, VersionIsPartOfTheKey) {
  SweepCache cache(8);
  const auto rec = std::make_shared<const guide::Recommendation>();
  cache.put(SweepKey{"aurora", "gb", 1, 134, 951}, rec);
  EXPECT_NE(cache.get(SweepKey{"aurora", "gb", 1, 134, 951}), nullptr);
  EXPECT_EQ(cache.get(SweepKey{"aurora", "gb", 2, 134, 951}), nullptr);
  EXPECT_EQ(cache.get(SweepKey{"aurora", "rf", 1, 134, 951}), nullptr);
}

// ----------------------------------------------------------- ModelRegistry

TEST(ModelRegistryTest, LoadsPublishedArtifact) {
  const auto dir = scratch_dir("registry_load");
  const auto model = campaign_gb();
  ModelRegistry registry(dir);
  ml::save_gb(model, registry.artifact_path("aurora", "gb"));

  const auto handle = registry.get("aurora", "gb");
  ASSERT_NE(handle.model, nullptr);
  EXPECT_EQ(handle.version, 1u);
  EXPECT_EQ(registry.trainings(), 0u);
  EXPECT_EQ(registry.loads(), 1u);
  // Bit-identical predictions to the published model.
  const auto split = test::small_campaign(250);
  const auto expect = model.predict(split.test.features());
  const auto got = handle.model->predict(split.test.features());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(expect[i], got[i]);
  }
  // Unchanged artifact: same version, no reload.
  EXPECT_EQ(registry.get("aurora", "gb").version, 1u);
  EXPECT_EQ(registry.loads(), 1u);
}

TEST(ModelRegistryTest, HotReloadsOnArtifactChange) {
  const auto dir = scratch_dir("registry_reload");
  ModelRegistry registry(dir);
  const auto path = registry.artifact_path("aurora", "gb");
  ml::save_gb(campaign_gb(10), path);
  const auto first = registry.get("aurora", "gb");
  EXPECT_EQ(first.version, 1u);

  // Publish a different model and force a visible mtime step (filesystem
  // clocks can be coarse).
  ml::save_gb(campaign_gb(20), path);
  fs::last_write_time(path,
                      fs::last_write_time(path) + std::chrono::seconds(2));
  const auto second = registry.get("aurora", "gb");
  EXPECT_EQ(second.version, 2u);
  EXPECT_NE(first.model, second.model);
  // The old handle still works (shared ownership).
  EXPECT_TRUE(first.model->is_fitted());
}

TEST(ModelRegistryTest, TrainsAndCachesWhenArtifactMissing) {
  const auto dir = scratch_dir("registry_train");
  RegistryOptions opt;
  opt.fallback_rows = 150;  // clipped up to one row per config — still small
  opt.gb_estimators = 6;
  ModelRegistry registry(dir, opt);
  const auto handle = registry.get("aurora", "gb");
  ASSERT_NE(handle.model, nullptr);
  EXPECT_TRUE(handle.model->is_fitted());
  EXPECT_EQ(registry.trainings(), 1u);
  EXPECT_TRUE(fs::exists(registry.artifact_path("aurora", "gb")));
  // Second get serves the cached artifact without retraining.
  registry.get("aurora", "gb");
  EXPECT_EQ(registry.trainings(), 1u);
  // A fresh registry over the same directory loads instead of training.
  ModelRegistry again(dir, opt);
  again.get("aurora", "gb");
  EXPECT_EQ(again.trainings(), 0u);
}

TEST(ModelRegistryTest, RejectsUnknownMachineAndKind) {
  ModelRegistry registry(scratch_dir("registry_bad"));
  EXPECT_THROW(registry.get("summit", "gb"), Error);
  EXPECT_THROW(registry.get("aurora", "xgboost"), Error);
}

// ------------------------------------------------------------------ Server

/// Registry + server over one pre-published small GB artifact. Extra
/// ServeOptions (fault injector, max_queue_depth, ...) ride in via `base`;
/// tests that need their own scratch directory pass a distinct `name`.
struct ServerFixture {
  explicit ServerFixture(std::size_t cache_capacity = 32,
                         std::size_t threads = 4, ServeOptions base = {},
                         const std::string& name = "server")
      : dir(scratch_dir(name)), registry(dir) {
    ml::save_gb(campaign_gb(), registry.artifact_path("aurora", "gb"));
    base.threads = threads;
    base.cache_capacity = cache_capacity;
    server = std::make_unique<Server>(registry, base);
  }

  Request stq(int o, int v) {
    Request r;
    r.op = Op::kStq;
    r.o = o;
    r.v = v;
    return r;
  }

  std::string dir;
  ModelRegistry registry;
  std::unique_ptr<Server> server;
};

TEST(ServerTest, MatchesInProcessAdvisorExactly) {
  ServerFixture f;
  const auto handle = f.registry.get("aurora", "gb");
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const guide::Advisor advisor(*handle.model, simulator);

  for (const auto& [o, v] : std::vector<std::pair<int, int>>{
           {44, 260}, {85, 698}, {134, 951}}) {
    Request req = f.stq(o, v);
    const auto stq = f.server->handle(req);
    ASSERT_TRUE(stq.ok) << stq.error;
    const auto expect_stq = advisor.shortest_time(o, v);
    EXPECT_EQ(stq.nodes, expect_stq.config.nodes);
    EXPECT_EQ(stq.tile, expect_stq.config.tile);
    EXPECT_EQ(stq.time_s, expect_stq.predicted_time_s);
    EXPECT_EQ(stq.node_hours, expect_stq.predicted_node_hours);
    EXPECT_EQ(stq.sweep_size, expect_stq.sweep.size());

    req.op = Op::kBq;
    const auto bq = f.server->handle(req);
    const auto expect_bq = advisor.cheapest_run(o, v);
    EXPECT_EQ(bq.nodes, expect_bq.config.nodes);
    EXPECT_EQ(bq.time_s, expect_bq.predicted_time_s);

    req.op = Op::kBudget;
    req.max_node_hours = expect_stq.predicted_node_hours * 0.75;
    const auto budget = f.server->handle(req);
    if (budget.ok) {
      const auto expect_budget =
          advisor.fastest_within_budget(o, v, req.max_node_hours);
      EXPECT_EQ(budget.nodes, expect_budget.config.nodes);
      EXPECT_EQ(budget.time_s, expect_budget.predicted_time_s);
      EXPECT_LE(budget.node_hours, req.max_node_hours);
    } else {
      EXPECT_THROW(advisor.fastest_within_budget(o, v, req.max_node_hours),
                   Error);
    }
  }
}

TEST(ServerTest, RepeatQuestionsHitTheSweepCache) {
  ServerFixture f;
  Request req = f.stq(134, 951);
  const auto first = f.server->handle(req);
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.cache_hit);
  req.op = Op::kBq;
  const auto second = f.server->handle(req);
  EXPECT_TRUE(second.cache_hit);  // BQ reuses the STQ sweep
  req.op = Op::kStq;
  const auto third = f.server->handle(req);
  EXPECT_TRUE(third.cache_hit);
  const auto stats = f.server->stats();
  EXPECT_EQ(stats.sweeps_computed, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.requests, 3u);
}

TEST(ServerTest, ErrorsComeBackAsResponsesAndAreCounted) {
  ServerFixture f;
  Request req = f.stq(-3, 100);  // invalid orbital count
  const auto r = f.server->handle(req);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  Request bad_machine = f.stq(44, 260);
  bad_machine.machine = "summit";
  EXPECT_FALSE(f.server->handle(bad_machine).ok);
  EXPECT_EQ(f.server->stats().errors, 2u);
}

TEST(ServerTest, JobEstimatesMatchTheSimulator) {
  ServerFixture f;
  Request req;
  req.op = Op::kJob;
  req.o = 134;
  req.v = 951;
  req.nodes = 110;
  req.tile = 90;
  const auto r = f.server->handle(req);
  ASSERT_TRUE(r.ok) << r.error;
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const auto job = sim::estimate_job(
      simulator, sim::RunConfig{.o = 134, .v = 951, .nodes = 110, .tile = 90});
  EXPECT_EQ(r.total_s, job.total_s);
  EXPECT_EQ(r.iterations, job.iterations);
  EXPECT_EQ(r.node_hours, job.node_hours);
}

TEST(ServerTest, SubmitRunsThroughTheWorkerPool) {
  ServerFixture f;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(f.server->submit(f.stq(85, 698)));
  for (auto& fut : futures) {
    const auto r = fut.get();
    EXPECT_TRUE(r.ok) << r.error;
  }
  const auto stats = f.server->stats();
  EXPECT_EQ(stats.requests, 8u);
  // One sweep total: the rest were cache hits or coalesced onto the leader.
  EXPECT_EQ(stats.sweeps_computed, 1u);
  EXPECT_EQ(stats.cache_hits + stats.coalesced, 7u);
}

TEST(ServerConcurrencyTest, ParallelRequestsMatchSerialExecution) {
  // The acceptance property: N threads issuing overlapping STQ/BQ/budget
  // requests produce exactly the answers serial execution produces.
  const std::vector<std::pair<int, int>> problems = {
      {44, 260}, {85, 698}, {116, 575}, {134, 951}};

  // Serial reference on its own server instance (fresh cache).
  ServerFixture serial_f(32, 1);
  ServerFixture parallel_f(32, 4);

  const auto make_request = [&](int step) {
    const auto& [o, v] = problems[step % problems.size()];
    Request r;
    r.o = o;
    r.v = v;
    switch (step % 3) {
      case 0: r.op = Op::kStq; break;
      case 1: r.op = Op::kBq; break;
      default:
        r.op = Op::kBudget;
        r.max_node_hours = 100.0;
    }
    return r;
  };

  constexpr int kThreads = 8;
  constexpr int kPerThread = 24;
  std::vector<Response> serial(kThreads * kPerThread);
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    serial[i] = serial_f.server->handle(make_request(i));
  }

  std::vector<Response> parallel(kThreads * kPerThread);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int idx = t * kPerThread + i;
        parallel[idx] = parallel_f.server->handle(make_request(idx));
        if (!parallel[idx].ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  for (int i = 0; i < kThreads * kPerThread; ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    EXPECT_EQ(parallel[i].nodes, serial[i].nodes) << "request " << i;
    EXPECT_EQ(parallel[i].tile, serial[i].tile) << "request " << i;
    EXPECT_EQ(parallel[i].time_s, serial[i].time_s) << "request " << i;
    EXPECT_EQ(parallel[i].node_hours, serial[i].node_hours)
        << "request " << i;
  }

  // Sweep work must not scale with request count: one sweep per problem
  // size (model version is fixed), everything else cache/coalesce.
  const auto stats = parallel_f.server->stats();
  EXPECT_EQ(stats.sweeps_computed, problems.size());
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServerTest, CacheEvictionKeepsServing) {
  ServerFixture f(/*cache_capacity=*/1, /*threads=*/1);
  const auto a = f.server->handle(f.stq(44, 260));
  const auto b = f.server->handle(f.stq(85, 698));   // evicts (44,260)
  const auto a2 = f.server->handle(f.stq(44, 260));  // recomputed, same answer
  ASSERT_TRUE(a.ok && b.ok && a2.ok);
  EXPECT_EQ(a.nodes, a2.nodes);
  EXPECT_EQ(a.time_s, a2.time_s);
  EXPECT_GE(f.server->stats().cache_evictions, 1u);
  EXPECT_EQ(f.server->stats().sweeps_computed, 3u);
}

// ------------------------------------------------- Advisor sweep reuse

TEST(AdvisorSweepReuseTest, BudgetOverloadMatchesFullSweep) {
  const auto handle_model = campaign_gb();
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const guide::Advisor advisor(handle_model, simulator);
  const auto base = advisor.shortest_time(134, 951);

  const auto direct = advisor.fastest_within_budget(134, 951, 2.0);
  const auto reused = guide::Advisor::fastest_within_budget(base, 2.0);
  EXPECT_EQ(direct.config.nodes, reused.config.nodes);
  EXPECT_EQ(direct.config.tile, reused.config.tile);
  EXPECT_EQ(direct.predicted_time_s, reused.predicted_time_s);

  const auto bq = guide::Advisor::from_sweep(base.sweep,
                                             guide::Objective::kNodeHours);
  const auto expect_bq = advisor.cheapest_run(134, 951);
  EXPECT_EQ(bq.config.nodes, expect_bq.config.nodes);
  EXPECT_EQ(bq.predicted_node_hours, expect_bq.predicted_node_hours);

  EXPECT_THROW(guide::Advisor::fastest_within_budget(base, 1e-9), Error);
  EXPECT_THROW(guide::Advisor::from_sweep({}, guide::Objective::kNodeHours),
               Error);
}

// ----------------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, DisabledInjectorNeverFires) {
  FaultInjector off;  // all probabilities zero
  EXPECT_FALSE(off.enabled());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(off.fire(FaultPoint::kArtifactRead));
    EXPECT_EQ(off.maybe_delay(FaultPoint::kSweepCompute), 0.0);
  }
  EXPECT_EQ(off.injected(FaultPoint::kArtifactRead), 0u);
  EXPECT_EQ(off.injected(FaultPoint::kSweepCompute), 0u);
}

TEST(FaultInjectorTest, SameSeedGivesBitIdenticalSchedule) {
  FaultOptions opt;
  opt.seed = 42;
  opt.artifact_read_failure = 0.3;
  opt.sweep_delay = 0.5;
  opt.worker_stall = 0.25;
  opt.cache_shard_hold = 0.7;
  // Tiny base delays: maybe_delay sleeps for real, keep the test fast.
  opt.sweep_delay_ms = 0.01;
  opt.worker_stall_ms = 0.01;
  opt.cache_shard_hold_ms = 0.01;

  FaultInjector a(opt);
  FaultInjector b(opt);
  const FaultPoint points[] = {FaultPoint::kArtifactRead,
                               FaultPoint::kSweepCompute,
                               FaultPoint::kWorkerStall,
                               FaultPoint::kCacheShard};
  for (const FaultPoint p : points) {
    bool fired_any = false;
    bool spared_any = false;
    for (std::uint64_t n = 0; n < 200; ++n) {
      // The Nth arrival draws the same verdict in both injectors, and the
      // static schedule oracle predicts it without consuming arrivals.
      const bool fa = a.fire(p);
      EXPECT_EQ(fa, b.fire(p)) << fault_point_name(p) << " arrival " << n;
      EXPECT_EQ(fa, FaultInjector::unit_draw(opt.seed, p, n) <
                        a.probability(p))
          << fault_point_name(p) << " arrival " << n;
      fired_any |= fa;
      spared_any |= !fa;
    }
    EXPECT_TRUE(fired_any) << fault_point_name(p);
    EXPECT_TRUE(spared_any) << fault_point_name(p);
    EXPECT_EQ(a.arrivals(p), 200u);
    EXPECT_EQ(a.injected(p), b.injected(p));
  }

  // maybe_delay's actual sleep matches the pure schedule function.
  FaultInjector c(opt);
  for (std::uint64_t n = 0; n < 32; ++n) {
    const double expect =
        FaultInjector::delay_for(opt, FaultPoint::kSweepCompute, n);
    EXPECT_EQ(c.maybe_delay(FaultPoint::kSweepCompute), expect);
  }

  // A different seed produces a different schedule somewhere.
  FaultOptions other = opt;
  other.seed = 43;
  int diffs = 0;
  for (std::uint64_t n = 0; n < 200; ++n) {
    diffs += FaultInjector::delay_for(opt, FaultPoint::kSweepCompute, n) !=
             FaultInjector::delay_for(other, FaultPoint::kSweepCompute, n);
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjectorTest, ProtocolCarriesDeadlineCodeAndStale) {
  const auto req = parse_request(
      R"({"op":"stq","o":44,"v":260,"deadline_ms":250})");
  EXPECT_EQ(req.deadline_ms, 250);
  EXPECT_THROW(
      parse_request(R"({"op":"stq","o":1,"v":2,"deadline_ms":-5})"), Error);

  const Response err = error_response("too slow", "stq", "q9", "deadline");
  const auto rec = parse_record(format_response(err));
  EXPECT_EQ(rec.at("ok"), "false");
  EXPECT_EQ(rec.at("code"), "deadline");
  EXPECT_EQ(rec.at("error"), "too slow");

  Response stale;
  stale.ok = true;
  stale.stale = true;
  EXPECT_EQ(parse_record(format_response(stale)).at("stale"), "true");
}

// ------------------------------------------------- cache property tests

/// Randomised op sequences against an exact reference model: the LruCache
/// must track a textbook LRU list (size, presence, values, counters).
TEST(LruCachePropertyTest, RandomOpsMatchReferenceModel) {
  constexpr std::size_t kCapacity = 5;
  LruCache<int, int> cache(kCapacity);
  std::list<std::pair<int, int>> model;  // front = most recently used
  CacheCounters expect;

  Rng rng(99);
  for (int step = 0; step < 5000; ++step) {
    const int key = static_cast<int>(rng.uniform_int(0, 15));
    const auto it = std::find_if(model.begin(), model.end(),
                                 [&](const auto& e) { return e.first == key; });
    if (rng.bernoulli(0.5)) {
      const auto got = cache.get(key);
      if (it == model.end()) {
        ++expect.misses;
        EXPECT_FALSE(got.has_value()) << "step " << step;
      } else {
        ++expect.hits;
        model.splice(model.begin(), model, it);
        ASSERT_TRUE(got.has_value()) << "step " << step;
        EXPECT_EQ(*got, model.front().second) << "step " << step;
      }
    } else {
      cache.put(key, step);
      if (it == model.end()) {
        model.emplace_front(key, step);
        if (model.size() > kCapacity) {
          model.pop_back();
          ++expect.evictions;
        }
      } else {
        it->second = step;
        model.splice(model.begin(), model, it);
      }
    }
    ASSERT_EQ(cache.size(), model.size()) << "step " << step;
  }
  EXPECT_EQ(cache.counters().hits, expect.hits);
  EXPECT_EQ(cache.counters().misses, expect.misses);
  EXPECT_EQ(cache.counters().evictions, expect.evictions);
  // Every resident key maps to the model's value (gets mirror recency).
  const auto resident = model;  // snapshot: gets below reorder both equally
  for (const auto& [key, value] : resident) {
    const auto got = cache.get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, value);
  }
}

/// Same property one level up: the sharded SweepCache must behave as
/// independent per-shard LRUs with hash-distributed keys.
TEST(SweepCachePropertyTest, RandomOpsMatchShardedReferenceModel) {
  constexpr std::size_t kCapacity = 12;
  constexpr std::size_t kShards = 4;
  SweepCache cache(kCapacity, kShards);
  const std::size_t per_shard = (kCapacity + kShards - 1) / kShards;

  struct RefShard {
    std::list<std::pair<SweepKey, SweepPtr>> items;  // front = MRU
    CacheCounters counters;
  };
  std::vector<RefShard> ref(kShards);
  // Shard assignment mirrors exec::ShardedMemoCache: the bucket hash is
  // re-mixed so shard choice and bucket choice stay uncorrelated.
  const auto shard_of = [&](const SweepKey& k) {
    return exec::splitmix64(SweepKeyHash()(k) + exec::kGoldenGamma) % kShards;
  };

  Rng rng(123);
  const auto random_key = [&] {
    SweepKey k;
    k.machine = rng.bernoulli(0.5) ? "aurora" : "frontier";
    k.kind = "gb";
    k.model_version = static_cast<std::uint64_t>(rng.uniform_int(1, 2));
    k.o = static_cast<int>(rng.uniform_int(1, 6)) * 10;
    k.v = k.o * 5;
    return k;
  };

  for (int step = 0; step < 3000; ++step) {
    const SweepKey key = random_key();
    RefShard& shard = ref[shard_of(key)];
    const auto it =
        std::find_if(shard.items.begin(), shard.items.end(),
                     [&](const auto& e) { return e.first == key; });
    if (rng.bernoulli(0.5)) {
      const SweepPtr got = cache.get(key);
      if (it == shard.items.end()) {
        ++shard.counters.misses;
        EXPECT_EQ(got, nullptr) << "step " << step;
      } else {
        ++shard.counters.hits;
        shard.items.splice(shard.items.begin(), shard.items, it);
        EXPECT_EQ(got, shard.items.front().second) << "step " << step;
      }
    } else {
      const auto value = std::make_shared<const guide::Recommendation>();
      cache.put(key, value);
      if (it == shard.items.end()) {
        shard.items.emplace_front(key, value);
        if (shard.items.size() > per_shard) {
          shard.items.pop_back();
          ++shard.counters.evictions;
        }
      } else {
        it->second = value;
        shard.items.splice(shard.items.begin(), shard.items, it);
      }
    }
  }

  CacheCounters expect;
  std::size_t expect_size = 0;
  for (const RefShard& shard : ref) {
    expect += shard.counters;
    expect_size += shard.items.size();
  }
  EXPECT_EQ(cache.size(), expect_size);
  EXPECT_EQ(cache.counters().hits, expect.hits);
  EXPECT_EQ(cache.counters().misses, expect.misses);
  EXPECT_EQ(cache.counters().evictions, expect.evictions);
  for (const RefShard& shard : ref) {
    for (const auto& [key, value] : shard.items) {
      EXPECT_EQ(cache.get(key), value);  // exact pointer identity
    }
  }
}

// ------------------------------------------------- robustness: deadlines

TEST(ServerRobustnessTest, DeadlineReturnsStructuredErrorAndWarmsCache) {
  FaultOptions fopt;
  fopt.seed = 7;
  fopt.sweep_delay = 1.0;  // every sweep sleeps 150..450 ms
  fopt.sweep_delay_ms = 300.0;
  FaultInjector fault(fopt);
  ServeOptions base;
  base.fault_injector = &fault;
  ServerFixture f(32, 2, base, "deadline");

  Request req = f.stq(44, 260);
  req.deadline_ms = 20;
  const auto timed_out = f.server->handle(req);
  EXPECT_FALSE(timed_out.ok);
  EXPECT_EQ(timed_out.code, "deadline");
  EXPECT_NE(timed_out.error.find("deadline"), std::string::npos);

  // The abandoned sweep still completes on the sweep pool and warms the
  // cache: asking again (no deadline) coalesces or hits, never recomputes.
  req.deadline_ms = 0;
  const auto answered = f.server->handle(req);
  ASSERT_TRUE(answered.ok) << answered.error;
  const auto stats = f.server->stats();
  EXPECT_EQ(stats.sweeps_computed, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(fault.injected(FaultPoint::kSweepCompute), 1u);

  // Fault delays never change answers, only timing.
  ServerFixture clean(32, 1, ServeOptions{}, "deadline_clean");
  const auto expect = clean.server->handle(clean.stq(44, 260));
  ASSERT_TRUE(expect.ok);
  EXPECT_EQ(answered.nodes, expect.nodes);
  EXPECT_EQ(answered.tile, expect.tile);
  EXPECT_EQ(answered.time_s, expect.time_s);
  EXPECT_EQ(answered.node_hours, expect.node_hours);
}

// -------------------------------------------- robustness: load shedding

TEST(ServerRobustnessTest, ShedsLoadBeyondMaxQueueDepth) {
  FaultOptions fopt;
  fopt.seed = 3;
  fopt.worker_stall = 1.0;  // the lone worker stalls 100..300 ms per task
  fopt.worker_stall_ms = 200.0;
  FaultInjector fault(fopt);
  ServeOptions base;
  base.fault_injector = &fault;
  base.max_queue_depth = 2;
  ServerFixture f(32, 1, base, "shed");

  Request req;
  req.op = Op::kStats;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(f.server->submit(req));

  int shed = 0;
  int answered = 0;
  for (auto& fut : futures) {
    const auto r = fut.get();
    if (r.ok) {
      ++answered;
    } else {
      EXPECT_EQ(r.code, "overloaded");
      EXPECT_NE(r.error.find("overloaded"), std::string::npos);
      ++shed;
    }
  }
  // The worker is stalled on the first task while the burst arrives, so
  // at most 1 running + 2 queued are admitted; the rest shed immediately.
  EXPECT_GE(shed, 7);
  EXPECT_EQ(shed + answered, 10);
  const auto stats = f.server->stats();
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(answered));
  EXPECT_GE(fault.injected(FaultPoint::kWorkerStall), 1u);
}

// -------------------------------------- robustness: stale-while-revalidate

TEST(ServerRobustnessTest, FailedReloadServesStaleAnswers) {
  ServerFixture f(32, 1, ServeOptions{}, "stale");
  const auto fresh = f.server->handle(f.stq(85, 698));
  ASSERT_TRUE(fresh.ok) << fresh.error;
  EXPECT_FALSE(fresh.stale);

  // Corrupt the artifact and bump its mtime: the reload fails, and the
  // server degrades to the last-good model instead of erroring.
  const auto path = f.registry.artifact_path("aurora", "gb");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "garbage, not a model\n";
  }
  fs::last_write_time(path,
                      fs::last_write_time(path) + std::chrono::seconds(2));
  const auto stale = f.server->handle(f.stq(85, 698));
  ASSERT_TRUE(stale.ok) << stale.error;
  EXPECT_TRUE(stale.stale);
  EXPECT_EQ(stale.model_version, fresh.model_version);
  EXPECT_EQ(stale.nodes, fresh.nodes);
  EXPECT_EQ(stale.time_s, fresh.time_s);
  EXPECT_EQ(stale.node_hours, fresh.node_hours);

  // The failed mtime is memoised: further requests serve stale without
  // re-attempting the load on every call.
  EXPECT_TRUE(f.server->handle(f.stq(85, 698)).stale);
  auto stats = f.server->stats();
  EXPECT_EQ(stats.reload_failures, 1u);
  EXPECT_EQ(stats.stale_served, 2u);

  // Republishing a good artifact recovers to a fresh (non-stale) version.
  ml::save_gb(campaign_gb(20), path);
  fs::last_write_time(path,
                      fs::last_write_time(path) + std::chrono::seconds(4));
  const auto recovered = f.server->handle(f.stq(85, 698));
  ASSERT_TRUE(recovered.ok) << recovered.error;
  EXPECT_FALSE(recovered.stale);
  EXPECT_EQ(recovered.model_version, fresh.model_version + 1);

  // The degraded-mode counters surface through the stats protocol verb.
  Request sreq;
  sreq.op = Op::kStats;
  const auto sresp = f.server->handle(sreq);
  ASSERT_TRUE(sresp.has_stats);
  const auto rec = parse_record(format_response(sresp));
  EXPECT_EQ(rec.at("reload_failures"), "1");
  EXPECT_EQ(rec.at("stale_served"), "2");
  EXPECT_EQ(rec.at("deadline_exceeded"), "0");
  EXPECT_EQ(rec.at("shed"), "0");
  EXPECT_EQ(rec.at("retries"), "0");
}

// -------------------------------------- robustness: queue depth accounting

TEST(ServerRobustnessTest, QueueDepthReturnsToZeroAfterMixedBurst) {
  FaultOptions fopt;
  fopt.seed = 11;
  fopt.worker_stall = 0.4;
  fopt.worker_stall_ms = 5.0;
  fopt.sweep_delay = 0.4;
  fopt.sweep_delay_ms = 10.0;
  fopt.cache_shard_hold = 0.4;
  fopt.cache_shard_hold_ms = 1.0;
  FaultInjector fault(fopt);
  ServeOptions base;
  base.fault_injector = &fault;
  base.max_queue_depth = 4;
  ServerFixture f(8, 2, base, "depth");

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 30; ++i) {
    Request r;
    switch (i % 4) {
      case 0: r = f.stq(44, 260); break;
      case 1: r = f.stq(-3, 100); break;  // invalid: fails inside the sweep
      case 2:
        r = f.stq(85, 698);
        r.deadline_ms = 1;  // expires in the queue or mid-sweep
        break;
      default: r.op = Op::kStats;
    }
    futures.push_back(f.server->submit(std::move(r)));
  }
  int answered = 0;
  int shed = 0;
  for (auto& fut : futures) {
    const auto r = fut.get();  // every request resolves exactly once
    ++answered;
    if (!r.ok && r.code == "overloaded") ++shed;
  }
  EXPECT_EQ(answered, 30);

  // The gauge must return to zero even though the burst mixed faulted,
  // deadline-exceeded and shed requests (exception-safe decrement). The
  // decrement runs just after the future resolves, so poll briefly.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (f.server->stats().queue_depth != 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto stats = f.server->stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.requests + stats.shed, 30u);
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed));
}

// ------------------------------------------------- dynamic batching: lane

TEST(BatchLaneTest, IdenticalColdKeysRunOneSweepSingleFlight) {
  // The dedup regression: N identical cold requests inside one batch must
  // run exactly ONE sweep compute and fan the answer out to every member.
  ServerFixture f(32, 2, ServeOptions{}, "batch_dedup");
  const std::vector<Request> batch(8, f.stq(85, 698));
  const auto out = f.server->dispatch_batch(batch);
  ASSERT_EQ(out.size(), batch.size());
  for (const auto& r : out) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.nodes, out[0].nodes);
    EXPECT_EQ(r.tile, out[0].tile);
    EXPECT_EQ(r.time_s, out[0].time_s);
    EXPECT_EQ(r.node_hours, out[0].node_hours);
    EXPECT_EQ(r.sweep_size, out[0].sweep_size);
  }
  const auto stats = f.server->stats();
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_EQ(stats.sweeps_computed, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);  // one probe per unique key, not 8
  EXPECT_EQ(stats.coalesced, 7u);     // the other members rode the leader
  EXPECT_EQ(stats.errors, 0u);
}

TEST(BatchLaneTest, DispatchBatchMatchesSerialBitIdentical) {
  // Mixed verbs, problems, errors and job estimates through the grouped
  // batch lane must answer byte-for-byte like serial handle() calls.
  ServerFixture serial_f(32, 1, ServeOptions{}, "batch_serial_ref");
  ServerFixture batch_f(32, 2, ServeOptions{}, "batch_lane");
  const std::vector<std::pair<int, int>> problems = {
      {44, 260}, {85, 698}, {116, 575}, {134, 951}};

  std::vector<Request> all;
  for (int i = 0; i < 40; ++i) {
    const auto& [o, v] = problems[i % problems.size()];
    Request r;
    r.o = o;
    r.v = v;
    switch (i % 5) {
      case 0: r.op = Op::kStq; break;
      case 1: r.op = Op::kBq; break;
      case 2:
        r.op = Op::kBudget;
        r.max_node_hours = 100.0;
        break;
      case 3:
        r.op = Op::kJob;
        r.nodes = 64;
        r.tile = 80;
        break;
      default:
        r.op = Op::kStq;
        r.o = -3;  // invalid: must error identically, not poison the group
    }
    all.push_back(std::move(r));
  }

  std::vector<Response> serial;
  serial.reserve(all.size());
  for (const auto& r : all) serial.push_back(serial_f.server->handle(r));
  const auto batched = batch_f.server->dispatch_batch(all);
  ASSERT_EQ(batched.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // cache_hit is observability metadata, not part of the answer: inside
    // one batch a repeated key coalesces onto its leader (cache_hit=false)
    // where a sequential replay would hit the just-warmed cache. Normalize
    // it, then demand byte-identical rendering of everything else.
    Response a = batched[i];
    Response b = serial[i];
    a.cache_hit = b.cache_hit = false;
    EXPECT_EQ(format_response(a), format_response(b)) << "request " << i;
  }

  // Sweep work must not scale with batch size: one sweep per problem.
  EXPECT_EQ(batch_f.server->stats().sweeps_computed, problems.size());
}

// -------------------------------------------- dynamic batching: scheduler

TEST(BatchSchedulerTest, LoneRequestBypassesWithoutHold) {
  ServeOptions base;
  base.batch.enabled = true;
  base.batch.max_batch = 16;
  base.batch.max_hold_us = 50000;  // 50 ms: a held request would be visible
  ServerFixture f(32, 2, base, "batch_bypass");
  ASSERT_TRUE(f.server->handle(f.stq(44, 260)).ok);  // warm the sweep cache

  const auto t0 = std::chrono::steady_clock::now();
  const auto r = f.server->submit(f.stq(44, 260)).get();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.cache_hit);
  // Far below the hold window: the empty-queue bypass dispatched at once.
  EXPECT_LT(ms, 25.0);
  const auto stats = f.server->stats();
  EXPECT_EQ(stats.batch_bypass, 1u);
  EXPECT_EQ(stats.batched_requests, 0u);
  EXPECT_EQ(stats.batch_flushes, 0u);
}

TEST(BatchSchedulerTest, BurstCoalescesAndStaysBitIdentical) {
  // A burst through the scheduler must coalesce into multi-request flushes
  // (max_inflight=1 keeps the slot busy so arrivals pile up) while every
  // answer stays bit-identical to serial execution.
  ServerFixture serial_f(32, 1, ServeOptions{}, "batch_burst_ref");
  ServeOptions base;
  base.batch.enabled = true;
  base.batch.max_batch = 64;
  base.batch.max_hold_us = 2000;
  base.batch.max_inflight = 1;
  ServerFixture f(32, 2, base, "batch_burst");

  const std::vector<std::pair<int, int>> problems = {
      {44, 260}, {85, 698}, {116, 575}, {134, 951}};
  const auto make_request = [&](int step) {
    const auto& [o, v] = problems[step % problems.size()];
    Request r;
    r.o = o;
    r.v = v;
    switch (step % 3) {
      case 0: r.op = Op::kStq; break;
      case 1: r.op = Op::kBq; break;
      default:
        r.op = Op::kBudget;
        r.max_node_hours = 100.0;
    }
    return r;
  };

  constexpr int kRequests = 48;
  std::vector<Response> serial(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    serial[i] = serial_f.server->handle(make_request(i));
  }

  std::vector<std::future<Response>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(f.server->submit(make_request(i)));
  }
  for (int i = 0; i < kRequests; ++i) {
    const auto r = futures[i].get();
    ASSERT_TRUE(r.ok) << "request " << i << ": " << r.error;
    EXPECT_EQ(r.nodes, serial[i].nodes) << "request " << i;
    EXPECT_EQ(r.tile, serial[i].tile) << "request " << i;
    EXPECT_EQ(r.time_s, serial[i].time_s) << "request " << i;
    EXPECT_EQ(r.node_hours, serial[i].node_hours) << "request " << i;
  }

  const auto stats = f.server->stats();
  // Every dispatched request is either in a >=2 flush or a bypass.
  EXPECT_EQ(stats.batched_requests + stats.batch_bypass,
            static_cast<std::uint64_t>(kRequests));
  EXPECT_GE(stats.batch_flushes, 1u);
  EXPECT_GE(stats.batched_requests, 2u);
  EXPECT_GE(stats.batch_size_p95, stats.batch_size_p50);
  EXPECT_GE(stats.batch_size_p50, 1.0);
  EXPECT_EQ(stats.sweeps_computed, problems.size());
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kRequests));
}

TEST(BatchSchedulerTest, DeadlineAwareFlushBeatsHold) {
  // The EDF rule: a queued request carrying a deadline is force-flushed at
  // deadline - hold even while every dispatch slot is busy — it must never
  // burn its deadline waiting out the hold window behind a slow batch.
  FaultOptions fopt;
  fopt.seed = 7;
  fopt.sweep_delay = 1.0;  // every sweep sleeps 150..450 ms
  fopt.sweep_delay_ms = 300.0;
  FaultInjector fault(fopt);
  ServeOptions base;
  base.fault_injector = &fault;
  base.batch.enabled = true;
  base.batch.max_batch = 8;
  base.batch.max_hold_us = 200000;  // 200 ms: FIFO hold would burn B
  base.batch.max_inflight = 1;      // A occupies the only dispatch slot
  ServerFixture f(32, 4, base, "batch_edf");

  // Warm (44,260) through the serial path (pays one stalled sweep).
  ASSERT_TRUE(f.server->handle(f.stq(44, 260)).ok);

  // A: cold key; bypasses into the single slot and stalls >= 150 ms.
  auto slow = f.server->submit(f.stq(134, 951));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // B: warm key, 100 ms deadline. Its EDF trigger (deadline - hold) is
  // already in the past, so the flusher dispatches it immediately even
  // though A holds the slot; the pool runs it on a free worker.
  Request b = f.stq(44, 260);
  b.deadline_ms = 100;
  const auto t0 = std::chrono::steady_clock::now();
  const auto rb = f.server->submit(b).get();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_TRUE(rb.cache_hit);
  EXPECT_LT(ms, 100.0);

  const auto ra = slow.get();
  ASSERT_TRUE(ra.ok) << ra.error;
  EXPECT_EQ(f.server->stats().deadline_exceeded, 0u);
}

TEST(BatchSchedulerTest, ShedsBeyondMaxQueueDepthWhenSlotsBusy) {
  FaultOptions fopt;
  fopt.seed = 3;
  fopt.sweep_delay = 1.0;  // park the slot on a slow sweep
  fopt.sweep_delay_ms = 200.0;
  FaultInjector fault(fopt);
  ServeOptions base;
  base.fault_injector = &fault;
  base.max_queue_depth = 2;
  base.batch.enabled = true;
  base.batch.max_batch = 8;
  base.batch.max_hold_us = 100000;  // long hold so the queue fills first
  base.batch.max_inflight = 1;
  ServerFixture f(32, 2, base, "batch_shed");

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(f.server->submit(f.stq(134, 951)));
  }
  int shed = 0;
  int answered = 0;
  for (auto& fut : futures) {
    const auto r = fut.get();
    if (r.ok) {
      ++answered;
    } else {
      EXPECT_EQ(r.code, "overloaded");
      ++shed;
    }
  }
  EXPECT_EQ(shed + answered, 10);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(f.server->stats().shed, static_cast<std::uint64_t>(shed));
}

// ---------------------------------------------- stats: tails + overflow

TEST(ServerStatsTest, VerbTailLatencySurfacesInStatsAndJson) {
  ServeOptions base;
  base.batch.enabled = true;
  ServerFixture f(32, 2, base, "stats_tail");
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(f.server->submit(f.stq(85, 698)).get().ok);
  }
  const auto stats = f.server->stats();
  const auto& stq = stats.verb_latency[static_cast<int>(Op::kStq)];
  EXPECT_EQ(stq.count, 6u);
  // Interpolated quantiles may exceed the exact max, so assert ordering
  // among quantiles and positivity of the exact max only.
  EXPECT_GE(stq.p99_ms, stq.p95_ms);
  EXPECT_GE(stq.p95_ms, stq.p50_ms);
  EXPECT_GT(stq.max_ms, 0.0);
  EXPECT_GE(stats.batch_bypass + stats.batch_flushes, 1u);

  Request sr;
  sr.op = Op::kStats;
  const auto resp = f.server->handle(sr);
  ASSERT_TRUE(resp.has_stats);
  const std::string json = format_response(resp);
  for (const char* field :
       {"lat_stq_p99_ms", "lat_stq_max_ms", "batched_requests",
        "batch_flushes", "batch_bypass", "batch_size_p50", "batch_size_p95",
        "overflow_closed"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(ServerStatsTest, OverflowSourceFeedsStats) {
  ServerFixture f(8, 1, ServeOptions{}, "overflow_src");
  EXPECT_EQ(f.server->stats().overflow_closed, 0u);
  f.server->set_overflow_source([] { return std::uint64_t{7}; });
  EXPECT_EQ(f.server->stats().overflow_closed, 7u);
}

TEST(ServerStatsTest, BatchAndTailFieldsSurviveTheWire) {
  Response r;
  r.ok = true;
  r.op = "stats";
  r.has_stats = true;
  r.stats.batched_requests = 123;
  r.stats.batch_flushes = 17;
  r.stats.batch_bypass = 9;
  r.stats.batch_size_p50 = 3.5;
  r.stats.batch_size_p95 = 12.25;
  r.stats.overflow_closed = 4;
  auto& verb = r.stats.verb_latency[static_cast<int>(Op::kStq)];
  verb.count = 11;
  verb.p50_ms = 0.5;
  verb.p95_ms = 2.0;
  verb.p99_ms = 3.75;
  verb.max_ms = 8.125;

  const std::string frame = wire::encode_response_frame({r});
  wire::FrameHeader header;
  std::string error;
  ASSERT_EQ(wire::probe_frame(
                reinterpret_cast<const unsigned char*>(frame.data()),
                frame.size(), &header, &error),
            wire::FrameStatus::kHeader)
      << error;
  const auto decoded = wire::decode_response_frame(
      header,
      reinterpret_cast<const unsigned char*>(frame.data()) + wire::kHeaderBytes);
  ASSERT_EQ(decoded.size(), 1u);
  const auto& d = decoded[0].stats;
  EXPECT_EQ(d.batched_requests, 123u);
  EXPECT_EQ(d.batch_flushes, 17u);
  EXPECT_EQ(d.batch_bypass, 9u);
  EXPECT_EQ(d.batch_size_p50, 3.5);
  EXPECT_EQ(d.batch_size_p95, 12.25);
  EXPECT_EQ(d.overflow_closed, 4u);
  const auto& dv = decoded[0].stats.verb_latency[static_cast<int>(Op::kStq)];
  EXPECT_EQ(dv.count, 11u);
  EXPECT_EQ(dv.p99_ms, 3.75);
  EXPECT_EQ(dv.max_ms, 8.125);
}

TEST(EventLoopOptionsTest, EffectiveInbufResolvesZeroToDerivedDefault) {
  EventLoopOptions opt;
  opt.max_line_bytes = 100;
  EXPECT_EQ(opt.effective_inbuf_bytes(), 100 + wire::kMaxFramePayload * 2);
  opt.max_inbuf_bytes = 4096;
  EXPECT_EQ(opt.effective_inbuf_bytes(), 4096u);
}

TEST(LatencyHistogramTest, TracksExactMax) {
  LatencyHistogram h;
  EXPECT_EQ(h.max(), 0.0);
  h.record(0.002);
  h.record(0.125);
  h.record(0.0004);
  EXPECT_EQ(h.max(), 0.125);
  h.reset();
  EXPECT_EQ(h.max(), 0.0);
}

}  // namespace
}  // namespace ccpred::serve
