#pragma once

/// \file fleet.hpp
/// Horizontal scale-out for the serving layer: N Server shards behind a
/// consistent-hash router.
///
/// Sharding key. Sweeps — the expensive unit of work — are pure functions
/// of (machine, kind, O, V) at a given model version, so that tuple is the
/// routing key: every repeat of a question lands on the shard whose sweep
/// cache already holds the answer. The model version is deliberately NOT
/// part of the key (a hot-reload would re-shard the whole keyspace for
/// nothing); job estimates route by the same (machine, kind, O, V) for
/// locality, stats fan out to every live shard and aggregate.
///
/// The ring. Each shard owns `vnodes` pseudo-random points on a u64 ring
/// (splitmix64 of (shard, replica)); a key belongs to the first shard
/// point clockwise from its hash. Adding or removing one shard therefore
/// moves only the slices adjacent to its points — the property the fleet
/// test pins down — and the ring is identical in every process that
/// configures the same shard count, which is what lets the serverd
/// `--fleet` router and its child processes agree on ownership without
/// any coordination.
///
/// Failure. kill_shard() models a crashed worker: the Server object is
/// dropped (its pools drain once in-flight requests release it) and the
/// slot goes dead. Routing then walks the key's preference list — the
/// distinct shards in ring order after the owner — to the first live
/// replica ("failover re-hash"). A restarted shard rejoins with an EMPTY
/// cache but, because sweeps are deterministic, answers bit-identically;
/// only cache_hit flags and latency differ. The chaos test (seeds 1/7/42)
/// drives kills and restarts through the FaultInjector's kShardKill /
/// kShardRestart points while asserting every request is answered exactly
/// once with baseline-identical bytes. The last live shard is never
/// killed, so an answer always exists.

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ccpred/serve/server.hpp"

namespace ccpred::serve {

/// Consistent-hash ring over integer shard ids. Not thread-safe; the
/// fleet mutates it only under its own lock (membership changes are rare).
class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 64);

  void add(int shard);
  void remove(int shard);
  bool contains(int shard) const { return shards_.count(shard) != 0; }
  std::size_t shard_count() const { return shards_.size(); }

  /// The shard owning `key` (first point clockwise). Throws if empty.
  int owner(std::uint64_t key) const;

  /// Up to `n` distinct shards in ring order starting at the owner: the
  /// key's failover preference list.
  std::vector<int> preference(std::uint64_t key, std::size_t n) const;

  /// Deterministic routing hash of the sweep-cache keyspace.
  static std::uint64_t key_hash(const std::string& machine,
                                const std::string& kind, int o, int v);

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, int> ring_;  ///< point -> shard
  std::set<int> shards_;
};

/// Fleet construction knobs.
struct FleetOptions {
  std::size_t shards = 3;
  std::size_t vnodes = 64;  ///< ring points per shard
  ServeOptions serve;       ///< applied to every shard's Server
  /// Optional chaos source consulted once per routed request: kShardKill
  /// tears down the target shard (never the last live one), kShardRestart
  /// revives the lowest-numbered dead shard. Must outlive the fleet.
  FaultInjector* fault_injector = nullptr;
};

/// Fleet-level counters (per-shard ServerStats aggregate separately).
struct FleetCounters {
  std::size_t shards = 0;
  std::size_t alive = 0;
  std::uint64_t routed = 0;     ///< requests routed to a shard
  std::uint64_t failovers = 0;  ///< served by a replica, owner dead
  std::uint64_t kills = 0;
  std::uint64_t restarts = 0;
  std::uint64_t unrouteable = 0;  ///< no live shard (cannot happen via faults)
};

/// In-process shard fleet. Thread-safe: handle()/submit_with() may be
/// called from any number of threads. All shards share one ModelRegistry,
/// so answers carry identical model versions regardless of which shard
/// serves them.
class ShardFleet {
 public:
  ShardFleet(ModelRegistry& registry, FleetOptions options);

  /// Routes one request to its shard (with failover) and handles it
  /// synchronously. Stats requests aggregate across live shards.
  Response handle(const Request& request);

  /// Routes and enqueues onto the target shard's worker pool.
  void submit_with(Request request, std::function<void(Response)> done);

  /// One worker task on the target shard of the FIRST request — wire
  /// frames are batched by the client precisely because they share a
  /// destination; mixed-destination frames still answer correctly, just
  /// without cache locality for the strays.
  void submit_batch_with(std::vector<Request> batch,
                         std::function<void(std::vector<Response>)> done);

  /// Tears down shard `i` (no-op if already dead or it is the last live
  /// shard; returns whether it died). In-flight requests finish first —
  /// the Server is destroyed when the last holder lets go.
  bool kill_shard(std::size_t i);

  /// Revives shard `i` with a fresh (empty-cache) Server. No-op if alive.
  bool restart_shard(std::size_t i);

  bool alive(std::size_t i) const;
  std::size_t shard_count() const { return slots_.size(); }

  /// The shard this request would be served by right now (failover
  /// applied), or -1 for stats fan-out. Exposed for tests.
  int route_of(const Request& request) const;

  FleetCounters counters() const;
  /// Sum of per-shard counters plus fleet-level queue depth; latency
  /// quantiles are request-weighted means across live shards.
  ServerStats aggregated_stats() const;

 private:
  struct Slot {
    mutable std::mutex mutex;        ///< guards `server` swap
    std::shared_ptr<Server> server;  ///< null while dead
    std::atomic<bool> alive{true};
    std::atomic<std::uint64_t> routed{0};
  };

  /// Pins the slot's server (or nullptr if dead).
  std::shared_ptr<Server> pin(std::size_t i) const;
  /// Key hash for a request, defaults applied.
  std::uint64_t request_key(const Request& request) const;
  /// First live shard in the key's preference list; -1 if none.
  int pick(std::uint64_t key, bool* failed_over) const;
  /// Consults the chaos points once per routed request.
  void maybe_chaos(std::uint64_t key);
  Response stats_response(const Request& request);

  ModelRegistry& registry_;
  FleetOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Slot>> slots_;
  /// Serializes kill/restart so two concurrent kills can never observe
  /// "two alive" and together empty the fleet.
  mutable std::mutex membership_mutex_;
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> kills_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> unrouteable_{0};
};

}  // namespace ccpred::serve
