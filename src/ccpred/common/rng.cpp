#include "ccpred/common/rng.hpp"

#include <cmath>
#include <numbers>

#include "ccpred/common/error.hpp"

namespace ccpred {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro's all-zero state is a fixed point; splitmix64 cannot produce
  // four zero outputs from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CCPRED_CHECK_MSG(lo <= hi, "uniform(lo,hi) requires lo<=hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CCPRED_CHECK_MSG(lo <= hi, "uniform_int(lo,hi) requires lo<=hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit span
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - range) % range;
  std::uint64_t r;
  do {
    r = next();
  } while (r < threshold);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  CCPRED_CHECK_MSG(stddev >= 0.0, "normal stddev must be >= 0");
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) {
  CCPRED_CHECK_MSG(median > 0.0, "lognormal median must be > 0");
  return median * std::exp(sigma * normal());
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  CCPRED_CHECK_MSG(k <= n, "cannot sample " << k << " from " << n);
  // Partial Fisher–Yates: O(n) memory, O(n + k) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<std::size_t> Rng::bootstrap_indices(std::size_t n) {
  CCPRED_CHECK_MSG(n > 0, "bootstrap_indices requires n > 0");
  std::vector<std::size_t> idx(n);
  // Inline uniform_int(0, n - 1) with the rejection threshold hoisted out
  // of the loop (it only depends on n): same next() call sequence and the
  // same Lemire rejection, so the drawn indices are identical to the
  // per-call form — this is purely a throughput change for the n divisions
  // the generic entry point would redo per draw.
  const auto range = static_cast<std::uint64_t>(n);
  const std::uint64_t threshold = (0 - range) % range;
  for (auto& i : idx) {
    std::uint64_t r;
    do {
      r = next();
    } while (r < threshold);
    i = static_cast<std::size_t>(r % range);
  }
  return idx;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

}  // namespace ccpred
