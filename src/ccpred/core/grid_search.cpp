#include "ccpred/core/grid_search.hpp"

#include <limits>

#include "ccpred/common/error.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/common/thread_pool.hpp"

namespace ccpred::ml {
namespace detail {

/// Shared by grid/random search: evaluate the candidate list in parallel
/// over the thread pool (inner CV runs serially inside a worker — the
/// nesting guard prevents pool deadlock), pick the best, optionally refit.
/// Each candidate seeds its own fold RNG from options.seed, so trials and
/// the winner are identical to a sequential evaluation, tie-broken toward
/// the earlier candidate.
SearchResult evaluate_candidates(const Regressor& prototype,
                                 const std::vector<ParamMap>& candidates,
                                 const linalg::Matrix& x,
                                 const std::vector<double>& y,
                                 const SearchOptions& options) {
  CCPRED_CHECK_MSG(!candidates.empty(), "no candidates to search");
  Stopwatch watch;
  SearchResult result;
  result.trials.resize(candidates.size());
  parallel_for(0, candidates.size(), [&](std::size_t c) {
    const auto& params = candidates[c];
    auto model = prototype.clone();
    model->set_params(params);
    Rng cv_rng(options.seed);  // same folds for every candidate
    const CvResult cv = cross_validate(*model, x, y, options.cv_folds, cv_rng);
    result.trials[c] =
        SearchTrial{.params = params,
                    .cv_scores = cv.mean,
                    .value = scoring_value(cv.mean, options.scoring)};
  });
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& trial : result.trials) {
    if (trial.value > best) {
      best = trial.value;
      result.best_params = trial.params;
      result.best_cv_scores = trial.cv_scores;
    }
  }
  if (options.refit) {
    result.best_model = prototype.clone();
    result.best_model->set_params(result.best_params);
    result.best_model->fit(x, y);
  }
  result.elapsed_s = watch.elapsed_s();
  return result;
}

}  // namespace detail

SearchResult grid_search(const Regressor& prototype, const ParamGrid& grid,
                         const linalg::Matrix& x, const std::vector<double>& y,
                         const SearchOptions& options) {
  return detail::evaluate_candidates(prototype, expand_grid(grid), x, y,
                                     options);
}

}  // namespace ccpred::ml
