#pragma once

/// \file polynomial.hpp
/// Polynomial regression (paper §3.1 "PR"): expands the four runtime
/// features into all monomials up to a total degree, then solves a ridge
/// system — linear in the coefficients, nonlinear in the features.

#include <memory>
#include <string>
#include <vector>

#include "ccpred/core/linear.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::ml {

/// All monomial exponent tuples of `dims` variables with total degree in
/// [1, degree], in deterministic lexicographic order.
std::vector<std::vector<int>> monomial_exponents(std::size_t dims, int degree);

/// Expands each row of `x` into the monomial features given by `exponents`.
linalg::Matrix polynomial_expand(const linalg::Matrix& x,
                                 const std::vector<std::vector<int>>& exponents);

/// Polynomial regression. Parameters: "degree" (1..6), "alpha" (ridge
/// penalty on the expanded features).
class PolynomialRegression : public Regressor {
 public:
  explicit PolynomialRegression(int degree = 3, double alpha = 1e-6);

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const linalg::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return linear_.is_fitted(); }

  int degree() const { return degree_; }

 private:
  int degree_;
  double alpha_;
  std::vector<std::vector<int>> exponents_;
  RidgeRegression linear_;
};

}  // namespace ccpred::ml
