#pragma once

/// \file gradient_boosting.hpp
/// Gradient-boosted regression trees (paper §3.1 "GB") with squared loss:
/// each stage fits a CART tree to the current residuals and is shrunk by a
/// learning rate. The paper's winning model — its tuned configuration
/// (750 estimators, depth 10, defaults otherwise) is the library default.
///
/// Hot paths: with TreeOptions::split_mode == kHistogram the features are
/// quantile-binned once per fit and every stage trains on the shared
/// FeatureBins; residual updates run chunked over the shared thread pool.
/// fit() also compiles the fitted stages into a CompiledEnsemble, so
/// predict() serves flattened SoA batch inference (bit-identical to the
/// reference tree walk, see predict_walk).

#include <memory>
#include <string>
#include <vector>

#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::ml {

class CompiledEnsemble;

/// Parameters: "n_estimators", "learning_rate", "max_depth",
/// "min_samples_split", "min_samples_leaf", "subsample" (stochastic GB),
/// "split_mode" (0 exact / 1 histogram), "max_bins".
class GradientBoostingRegressor : public Regressor {
 public:
  explicit GradientBoostingRegressor(int n_estimators = 750,
                                     double learning_rate = 0.1,
                                     TreeOptions tree_options = {},
                                     double subsample = 1.0,
                                     std::uint64_t seed = 42);

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;

  /// Compiled batch inference (CompiledEnsemble); bit-identical to
  /// predict_walk.
  std::vector<double> predict(const linalg::Matrix& x) const override;

  /// Reference tree-walk prediction path — kept as the verification
  /// baseline for the compiled engine (tests assert bitwise equality).
  std::vector<double> predict_walk(const linalg::Matrix& x) const;

  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return fitted_; }

  std::size_t stage_count() const { return trees_.size(); }
  double learning_rate() const { return learning_rate_; }

  /// Mean impurity-based feature importances over the boosting stages,
  /// normalized to sum to 1.
  std::vector<double> feature_importances() const;

  /// Prediction truncated to the first `stages` boosting stages — used by
  /// staged-training diagnostics and the hyper-parameter ablation bench.
  std::vector<double> predict_staged(const linalg::Matrix& x,
                                     std::size_t stages) const;

  /// Serialization access: the fitted stages and base prediction.
  const std::vector<DecisionTreeRegressor>& stages() const { return trees_; }
  double base_prediction() const { return base_prediction_; }

  /// The flattened inference engine (built on fit/load). Requires fit().
  const CompiledEnsemble& compiled() const;

  /// Reconstructs a fitted model from its parts (serialization loader).
  static GradientBoostingRegressor from_parts(
      double learning_rate, double base_prediction,
      std::vector<DecisionTreeRegressor> stages);

 private:
  int n_estimators_;
  double learning_rate_;
  TreeOptions tree_options_;
  double subsample_;
  std::uint64_t seed_;

  bool fitted_ = false;
  double base_prediction_ = 0.0;
  std::vector<DecisionTreeRegressor> trees_;
  /// Built eagerly whenever trees_ changes (fit / from_parts), so the
  /// serving registry compiles exactly once per loaded artifact and
  /// concurrent predict() needs no synchronization. Immutable once set.
  std::shared_ptr<const CompiledEnsemble> compiled_;
};

}  // namespace ccpred::ml
