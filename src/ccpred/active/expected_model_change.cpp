#include "ccpred/active/expected_model_change.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ccpred/common/error.hpp"

namespace ccpred::al {

const std::string& ExpectedModelChange::name() const {
  static const std::string n = "EMC";
  return n;
}

std::vector<std::size_t> ExpectedModelChange::select(
    const Pool& pool, const ml::Regressor& fitted_model,
    std::size_t query_size, Rng& /*rng*/) {
  const auto* uncertain =
      dynamic_cast<const ml::UncertaintyRegressor*>(&fitted_model);
  CCPRED_CHECK_MSG(uncertain != nullptr,
                   "expected model change needs a model with predictive std "
                   "(GP or Bayesian ridge)");

  const linalg::Matrix x_unlabeled = pool.unlabeled_features();
  std::vector<double> mean;
  std::vector<double> std_dev;
  uncertain->predict_with_std(x_unlabeled, mean, std_dev);

  // Leverage term: standardized feature norm relative to the labeled set's
  // statistics (the model's own training distribution).
  data::StandardScaler scaler;
  scaler.fit(pool.labeled_features());
  const linalg::Matrix z = scaler.transform(x_unlabeled);

  std::vector<double> score(z.rows());
  for (std::size_t i = 0; i < z.rows(); ++i) {
    double norm_sq = 1.0;  // bias component of phi(x)
    const double* zi = z.row_ptr(i);
    for (std::size_t c = 0; c < z.cols(); ++c) norm_sq += zi[c] * zi[c];
    score[i] = std_dev[i] * std::sqrt(norm_sq);
  }

  std::vector<std::size_t> order(score.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t k = std::min(query_size, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return score[a] > score[b];
                    });
  order.resize(k);
  return order;
}

}  // namespace ccpred::al
