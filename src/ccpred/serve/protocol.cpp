#include "ccpred/serve/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "ccpred/common/error.hpp"
#include "ccpred/common/strings.hpp"

namespace ccpred::serve {
namespace {

/// Cursor over one request line; all helpers throw on malformed input so
/// the caller can turn any parse failure into an error response.
struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool done() {
    skip_ws();
    return i >= s.size();
  }
  char peek() {
    skip_ws();
    CCPRED_CHECK_MSG(i < s.size(), "protocol: unexpected end of line");
    return s[i];
  }
  void expect(char c) {
    CCPRED_CHECK_MSG(peek() == c, "protocol: expected '"
                                      << c << "' at column " << i << ", got '"
                                      << s[i] << "'");
    ++i;
  }
};

std::string parse_string(Cursor& c) {
  c.expect('"');
  std::string out;
  while (true) {
    CCPRED_CHECK_MSG(c.i < c.s.size(), "protocol: unterminated string");
    const char ch = c.s[c.i++];
    if (ch == '"') return out;
    if (ch == '\\') {
      CCPRED_CHECK_MSG(c.i < c.s.size(), "protocol: dangling escape");
      const char esc = c.s[c.i++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default:
          throw Error(std::string("protocol: unsupported escape '\\") + esc +
                      "'");
      }
    } else {
      out += ch;
    }
  }
}

/// A bare (unquoted) scalar: number, true or false. Returned as written.
std::string parse_scalar(Cursor& c) {
  c.skip_ws();
  std::string out;
  while (c.i < c.s.size()) {
    const char ch = c.s[c.i];
    if (ch == ',' || ch == '}' ||
        std::isspace(static_cast<unsigned char>(ch))) {
      break;
    }
    CCPRED_CHECK_MSG(ch != '{' && ch != '[',
                     "protocol: nested values are not supported");
    out += ch;
    ++c.i;
  }
  CCPRED_CHECK_MSG(!out.empty(), "protocol: empty value");
  return out;
}

void json_escape(std::ostream& os, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

/// Compact double rendering with enough digits to round-trip answers.
std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Exact double rendering for request fields: a request formatted by one
/// process and parsed by another must carry bit-identical values.
std::string number_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

int field_int(const std::map<std::string, std::string>& rec,
              const std::string& key) {
  const auto it = rec.find(key);
  CCPRED_CHECK_MSG(it != rec.end(), "request: missing field \"" << key
                                        << "\"");
  return static_cast<int>(parse_int(it->second));
}

double field_double(const std::map<std::string, std::string>& rec,
                    const std::string& key) {
  const auto it = rec.find(key);
  CCPRED_CHECK_MSG(it != rec.end(), "request: missing field \"" << key
                                        << "\"");
  return parse_double(it->second);
}

std::string field_or(const std::map<std::string, std::string>& rec,
                     const std::string& key, const std::string& fallback) {
  const auto it = rec.find(key);
  return it == rec.end() ? fallback : it->second;
}

/// One validated wall-time measurement. std::from_chars happily parses
/// "nan" and "inf", so finiteness is checked explicitly here — nothing
/// non-finite or non-positive escapes the parse boundary.
double parse_wall_time(const std::string& text) {
  const double value = parse_double(text);
  CCPRED_CHECK_MSG(std::isfinite(value) && value > 0.0,
                   "report: wall time must be a finite positive number, got \""
                       << text << "\"");
  return value;
}

/// The report op's measurements: either "wall_time_s" (one number) or
/// "wall_times" (comma-separated batch, at most kMaxReportBatch entries).
std::vector<double> parse_wall_times(
    const std::map<std::string, std::string>& rec) {
  const bool single = rec.count("wall_time_s") != 0;
  const bool batch = rec.count("wall_times") != 0;
  CCPRED_CHECK_MSG(single != batch,
                   "report: provide exactly one of \"wall_time_s\" and "
                   "\"wall_times\"");
  std::vector<double> out;
  if (single) {
    out.push_back(parse_wall_time(rec.at("wall_time_s")));
    return out;
  }
  const std::string& list = rec.at("wall_times");
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = list.find(',', start);
    const std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    CCPRED_CHECK_MSG(!item.empty(), "report: empty entry in \"wall_times\"");
    CCPRED_CHECK_MSG(out.size() < kMaxReportBatch,
                     "report: \"wall_times\" carries more than "
                         << kMaxReportBatch << " entries");
    out.push_back(parse_wall_time(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kStq: return "stq";
    case Op::kBq: return "bq";
    case Op::kBudget: return "budget";
    case Op::kJob: return "job";
    case Op::kStats: return "stats";
    case Op::kReport: return "report";
  }
  return "?";
}

std::map<std::string, std::string> parse_record(const std::string& line) {
  Cursor c{line};
  c.expect('{');
  std::map<std::string, std::string> rec;
  if (c.peek() == '}') {
    ++c.i;
  } else {
    while (true) {
      const std::string key = parse_string(c);
      c.expect(':');
      const std::string value =
          c.peek() == '"' ? parse_string(c) : parse_scalar(c);
      CCPRED_CHECK_MSG(rec.emplace(key, value).second,
                       "protocol: duplicate key \"" << key << "\"");
      const char next = c.peek();
      ++c.i;
      if (next == '}') break;
      CCPRED_CHECK_MSG(next == ',', "protocol: expected ',' or '}' after \""
                                        << key << "\"");
    }
  }
  CCPRED_CHECK_MSG(c.done(), "protocol: trailing characters after '}'");
  return rec;
}

Request parse_request(const std::string& line) {
  const auto rec = parse_record(line);
  Request req;
  const std::string op = field_or(rec, "op", "");
  CCPRED_CHECK_MSG(!op.empty(), "request: missing field \"op\"");
  if (op == "stq") {
    req.op = Op::kStq;
  } else if (op == "bq") {
    req.op = Op::kBq;
  } else if (op == "budget") {
    req.op = Op::kBudget;
  } else if (op == "job") {
    req.op = Op::kJob;
  } else if (op == "stats") {
    req.op = Op::kStats;
  } else if (op == "report") {
    req.op = Op::kReport;
  } else {
    throw Error("request: unknown op \"" + op +
                "\" (use stq|bq|budget|job|stats|report)");
  }
  req.id = field_or(rec, "id", "");
  req.machine = field_or(rec, "machine", "");
  req.model = field_or(rec, "model", "");
  if (req.op != Op::kStats) {
    req.o = field_int(rec, "o");
    req.v = field_int(rec, "v");
  }
  if (req.op == Op::kJob || req.op == Op::kReport) {
    req.nodes = field_int(rec, "nodes");
    req.tile = field_int(rec, "tile");
  }
  if (req.op == Op::kReport) {
    req.wall_times = parse_wall_times(rec);
  }
  if (req.op == Op::kBudget) {
    req.max_node_hours = field_double(rec, "max_node_hours");
  }
  if (rec.count("deadline_ms") != 0) {
    req.deadline_ms = field_int(rec, "deadline_ms");
  }
  validate_request(req);
  return req;
}

void validate_request(const Request& req) {
  CCPRED_CHECK_MSG(req.deadline_ms >= 0,
                   "request: deadline_ms must be >= 0, got " << req.deadline_ms);
  if (req.op == Op::kReport) {
    CCPRED_CHECK_MSG(req.o > 0 && req.v > 0 && req.nodes > 0 && req.tile > 0,
                     "report: o, v, nodes and tile must be positive");
    CCPRED_CHECK_MSG(!req.wall_times.empty() &&
                         req.wall_times.size() <= kMaxReportBatch,
                     "report: between 1 and " << kMaxReportBatch
                                              << " wall times required");
    for (const double wall : req.wall_times) {
      CCPRED_CHECK_MSG(
          std::isfinite(wall) && wall > 0.0,
          "report: wall time must be a finite positive number, got " << wall);
    }
  }
}

std::string format_request(const Request& req) {
  std::ostringstream os;
  os << "{\"op\":\"" << op_name(req.op) << '"';
  if (!req.id.empty()) {
    os << ",\"id\":\"";
    json_escape(os, req.id);
    os << '"';
  }
  if (!req.machine.empty()) {
    os << ",\"machine\":\"";
    json_escape(os, req.machine);
    os << '"';
  }
  if (!req.model.empty()) {
    os << ",\"model\":\"";
    json_escape(os, req.model);
    os << '"';
  }
  if (req.op != Op::kStats) os << ",\"o\":" << req.o << ",\"v\":" << req.v;
  if (req.op == Op::kJob || req.op == Op::kReport) {
    os << ",\"nodes\":" << req.nodes << ",\"tile\":" << req.tile;
  }
  if (req.op == Op::kBudget) {
    os << ",\"max_node_hours\":" << number_exact(req.max_node_hours);
  }
  if (req.op == Op::kReport) {
    os << ",\"wall_times\":\"";
    for (std::size_t i = 0; i < req.wall_times.size(); ++i) {
      if (i != 0) os << ',';
      os << number_exact(req.wall_times[i]);
    }
    os << '"';
  }
  if (req.deadline_ms > 0) os << ",\"deadline_ms\":" << req.deadline_ms;
  os << '}';
  return os.str();
}

std::string format_response(const Response& r) {
  std::ostringstream os;
  os << "{\"ok\":" << (r.ok ? "true" : "false");
  if (!r.op.empty()) {
    os << ",\"op\":\"";
    json_escape(os, r.op);
    os << '"';
  }
  if (!r.id.empty()) {
    os << ",\"id\":\"";
    json_escape(os, r.id);
    os << '"';
  }
  if (!r.ok) {
    if (!r.code.empty()) {
      os << ",\"code\":\"";
      json_escape(os, r.code);
      os << '"';
    }
    os << ",\"error\":\"";
    json_escape(os, r.error);
    os << '"';
  }
  if (r.stale) os << ",\"stale\":true";
  if (r.has_recommendation) {
    os << ",\"nodes\":" << r.nodes << ",\"tile\":" << r.tile
       << ",\"time_s\":" << number(r.time_s)
       << ",\"node_hours\":" << number(r.node_hours)
       << ",\"model_version\":" << r.model_version
       << ",\"sweep_size\":" << r.sweep_size
       << ",\"cache_hit\":" << (r.cache_hit ? "true" : "false");
  }
  if (r.has_job) {
    os << ",\"iterations\":" << r.iterations
       << ",\"setup_s\":" << number(r.setup_s)
       << ",\"iteration_s\":" << number(r.iteration_s)
       << ",\"total_s\":" << number(r.total_s)
       << ",\"node_hours\":" << number(r.node_hours);
  }
  if (r.has_report) {
    os << ",\"accepted\":" << r.accepted
       << ",\"duplicates\":" << r.duplicates
       << ",\"buffered\":" << r.buffered
       << ",\"rolling_mape\":" << number(r.rolling_mape)
       << ",\"drifting\":" << (r.drifting ? "true" : "false")
       << ",\"refit_scheduled\":" << (r.refit_scheduled ? "true" : "false")
       << ",\"model_version\":" << r.model_version;
  }
  if (r.has_stats) {
    const ServerStats& s = r.stats;
    os << ",\"requests\":" << s.requests << ",\"errors\":" << s.errors
       << ",\"sweeps_computed\":" << s.sweeps_computed
       << ",\"coalesced\":" << s.coalesced
       << ",\"cache_hits\":" << s.cache_hits
       << ",\"cache_misses\":" << s.cache_misses
       << ",\"cache_evictions\":" << s.cache_evictions
       << ",\"cache_hit_rate\":" << number(s.cache_hit_rate)
       << ",\"cache_size\":" << s.cache_size
       << ",\"queue_depth\":" << s.queue_depth
       << ",\"deadline_exceeded\":" << s.deadline_exceeded
       << ",\"shed\":" << s.shed
       << ",\"stale_served\":" << s.stale_served
       << ",\"reload_failures\":" << s.reload_failures
       << ",\"retries\":" << s.retries
       << ",\"models_loaded\":" << s.models_loaded
       << ",\"models_trained\":" << s.models_trained
       << ",\"latency_p50_ms\":" << number(s.latency_p50_ms)
       << ",\"latency_p95_ms\":" << number(s.latency_p95_ms)
       << ",\"latency_mean_ms\":" << number(s.latency_mean_ms)
       << ",\"batched_requests\":" << s.batched_requests
       << ",\"batch_flushes\":" << s.batch_flushes
       << ",\"batch_bypass\":" << s.batch_bypass
       << ",\"batch_size_p50\":" << number(s.batch_size_p50)
       << ",\"batch_size_p95\":" << number(s.batch_size_p95)
       << ",\"overflow_closed\":" << s.overflow_closed;
    for (std::size_t i = 0; i < kNumOps; ++i) {
      const VerbLatency& vl = s.verb_latency[i];
      if (vl.count == 0) continue;  // only verbs actually served
      const char* verb = op_name(static_cast<Op>(i));
      os << ",\"lat_" << verb << "_count\":" << vl.count << ",\"lat_" << verb
         << "_p50_ms\":" << number(vl.p50_ms) << ",\"lat_" << verb
         << "_p95_ms\":" << number(vl.p95_ms) << ",\"lat_" << verb
         << "_p99_ms\":" << number(vl.p99_ms) << ",\"lat_" << verb
         << "_max_ms\":" << number(vl.max_ms);
    }
    if (s.online_enabled) {
      const OnlineStats& o = s.online;
      os << ",\"online_reports\":" << o.reports
         << ",\"online_measurements\":" << o.measurements
         << ",\"online_duplicates\":" << o.duplicates
         << ",\"online_rejected\":" << o.rejected
         << ",\"online_buffered\":" << o.buffered
         << ",\"online_rolling_mape\":" << number(o.rolling_mape)
         << ",\"online_drift_events\":" << o.drift_events
         << ",\"online_incremental_updates\":" << o.incremental_updates
         << ",\"online_refits\":" << o.refits
         << ",\"online_shadow_evals\":" << o.shadow_evals
         << ",\"online_promotions\":" << o.promotions
         << ",\"online_promotions_rejected\":" << o.promotions_rejected
         << ",\"online_cache_invalidated\":" << o.cache_invalidated;
    }
  }
  os << '}';
  return os.str();
}

Response error_response(const std::string& message, const std::string& op,
                        const std::string& id, const std::string& code) {
  Response r;
  r.ok = false;
  r.op = op;
  r.id = id;
  r.error = message;
  r.code = code;
  return r;
}

}  // namespace ccpred::serve
