/// Online-learning overhead: report ingestion must not tax the hot path.
///
/// The closed-loop subsystem rides on the serving layer's request threads:
/// every `report` scores the reported configuration with the serving
/// model, feeds the drift detector and grows an incremental GP surrogate.
/// The number that matters is what that costs everyone else — so this
/// bench measures warm STQ/BQ/budget throughput twice, once on a plain
/// server and once with online learning enabled and one report
/// interleaved per 100 questions (report handling time lands in the
/// elapsed clock; only questions count toward QPS), and gates on the
/// ratio: with reports flowing, warm QPS must stay >= 90% of the
/// baseline (best of 3 passes each, to shave scheduler noise).
/// Interleaving on the measuring thread keeps the number deterministic
/// and independent of core count — a free-running reporter thread on a
/// small box measures CPU time-slicing, not ingestion cost. Report
/// ingestion throughput is measured alongside. Emits BENCH_online.json.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/server.hpp"

namespace {

using namespace ccpred;

serve::Request question(const std::vector<data::Problem>& problems,
                        std::size_t step) {
  serve::Request req;
  const auto& p = problems[step % problems.size()];
  req.o = p.o;
  req.v = p.v;
  switch (step % 3) {
    case 0: req.op = serve::Op::kStq; break;
    case 1: req.op = serve::Op::kBq; break;
    default:
      req.op = serve::Op::kBudget;
      req.max_node_hours = 100.0;
  }
  return req;
}

serve::Request report(std::size_t j) {
  serve::Request r;
  r.op = serve::Op::kReport;
  r.o = 44;
  r.v = 260;
  r.nodes = (j % 2 == 0) ? 5 : 15;
  r.tile = 40 + 10 * (j % 8);
  // Every wall time is byte-distinct: nothing dedups, every report runs
  // the full ingest path (predict + drift + buffer + GP absorb).
  r.wall_times = {12.0 + 1e-6 * static_cast<double>(j)};
  return r;
}

/// One `report` interleaved per this many questions when enabled.
constexpr std::size_t kReportEvery = 100;

/// Warm question QPS over `rounds` passes of the question mix; best of
/// `passes`. With `with_reports`, a report is handled inline every
/// kReportEvery questions — its cost stays in the elapsed time while only
/// questions are counted, so the ratio to the baseline is exactly the
/// ingestion tax on the hot path.
double measure_warm_qps(serve::Server& server,
                        const std::vector<data::Problem>& problems,
                        int rounds, int passes, bool with_reports,
                        std::size_t* reports_sent = nullptr) {
  double best = 0.0;
  std::size_t j = 0;
  for (int p = 0; p < passes; ++p) {
    Stopwatch watch;
    std::size_t n = 0;
    for (int round = 0; round < rounds; ++round) {
      for (std::size_t i = 0; i < problems.size(); ++i, ++n) {
        if (with_reports && n % kReportEvery == 0) {
          const auto rr = server.handle(report(j++));
          if (!rr.ok) {
            std::printf("report failed: %s\n", rr.error.c_str());
            std::exit(1);
          }
        }
        const auto r = server.handle(question(problems, n));
        if (!r.ok) {
          std::printf("warm request failed: %s\n", r.error.c_str());
          std::exit(1);
        }
      }
    }
    best = std::max(best, static_cast<double>(n) / watch.elapsed_s());
  }
  if (reports_sent != nullptr) *reports_sent = j;
  return best;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;

  const bool fast = bench::fast_mode();
  const std::string machine = "aurora";
  const auto& problems = data::problems_for(machine);
  const int warm_rounds = fast ? 20 : 150;
  const int passes = 3;

  const fs::path dir = fs::temp_directory_path() / "ccpred_bench_online";
  fs::remove_all(dir);

  serve::RegistryOptions ropt;
  ropt.fallback_rows = fast ? 300 : 600;
  ropt.gb_estimators = fast ? 40 : 120;
  serve::ModelRegistry registry(dir.string(), ropt);
  registry.train_artifact(machine, "gb");

  // Phase A: plain server, no online subsystem at all.
  double qps_baseline = 0.0;
  {
    serve::ServeOptions sopt;
    sopt.cache_capacity = 64;
    serve::Server server(registry, sopt);
    server.handle(question(problems, 0));  // warm the sweep cache
    for (std::size_t i = 0; i < problems.size(); ++i) {
      serve::Request req;
      req.op = serve::Op::kStq;
      req.o = problems[i].o;
      req.v = problems[i].v;
      server.handle(req);
    }
    qps_baseline =
        measure_warm_qps(server, problems, warm_rounds, passes, false);
  }

  // Phase B: online enabled, promotions out of reach (the serving model
  // must not change mid-measurement), one report interleaved per
  // kReportEvery questions. gp_max_rows is kept small so the cadence
  // full refit stays a bounded Cholesky, like a real deployment would cap
  // its surrogate.
  double qps_with_reports = 0.0;
  double reports_per_s = 0.0;
  std::size_t reports_sent = 0;
  {
    serve::ServeOptions sopt;
    sopt.cache_capacity = 64;
    sopt.online.enabled = true;
    sopt.online.min_refit_rows = 1u << 30;
    sopt.online.gp_max_rows = 64;
    serve::Server server(registry, sopt);
    for (std::size_t i = 0; i < problems.size(); ++i) {
      serve::Request req;
      req.op = serve::Op::kStq;
      req.o = problems[i].o;
      req.v = problems[i].v;
      server.handle(req);
    }

    qps_with_reports = measure_warm_qps(server, problems, warm_rounds, passes,
                                        true, &reports_sent);

    // Standalone ingestion throughput, no competing queries.
    const int ingest_n = fast ? 200 : 1000;
    Stopwatch watch;
    for (int j = 0; j < ingest_n; ++j) {
      const auto r = server.handle(report(1000000 + j));
      if (!r.ok) {
        std::printf("report failed: %s\n", r.error.c_str());
        return 1;
      }
    }
    reports_per_s = ingest_n / watch.elapsed_s();
  }

  const double ratio = qps_with_reports / qps_baseline;
  const bool pass = ratio >= 0.9;

  std::printf("== Online-learning hot-path overhead (%s, gb) ==\n\n",
              machine.c_str());
  TextTable table({"phase", "warm req/s"},
                  "Warm STQ/BQ/budget QPS, best of 3 passes");
  table.add_row({"baseline (online off)", TextTable::cell(qps_baseline, 1)});
  table.add_row({"with interleaved reports",
                 TextTable::cell(qps_with_reports, 1)});
  table.print();

  std::printf(
      "\nreports interleaved during measurement (1 per %zu questions): %zu\n"
      "standalone report ingestion: %.1f reports/s\n"
      "QPS ratio with/without: %.3f (gate >= 0.9): %s\n",
      kReportEvery, reports_sent, reports_per_s, ratio,
      pass ? "PASS" : "FAIL");

  std::FILE* json = std::fopen("BENCH_online.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\"qps_baseline\": %.1f, \"qps_with_reports\": %.1f, "
                 "\"ratio\": %.4f, \"reports_per_s\": %.1f, "
                 "\"interleaved_reports\": %zu, \"fast\": %d, "
                 "\"provenance\": %s}\n",
                 qps_baseline, qps_with_reports, ratio, reports_per_s,
                 reports_sent, fast ? 1 : 0,
                 bench::provenance_json().c_str());
    std::fclose(json);
    std::printf("wrote BENCH_online.json\n");
  }

  fs::remove_all(dir);
  return pass ? 0 : 1;
}
