#include "ccpred/sim/solver.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"

namespace ccpred::sim {

int ConvergenceModel::iterations_to_converge() const {
  CCPRED_CHECK_MSG(decay > 0.0 && decay < 1.0, "decay must be in (0, 1)");
  CCPRED_CHECK_MSG(tolerance > 0.0 && initial_residual > tolerance,
                   "tolerance must be positive and below the initial "
                   "residual");
  CCPRED_CHECK_MSG(max_iterations >= 1, "max_iterations must be >= 1");
  const double needed =
      std::log(tolerance / initial_residual) / std::log(decay);
  const int iters = static_cast<int>(std::ceil(needed));
  return std::min(std::max(iters, 1), max_iterations);
}

double setup_time_s(const CcsdSimulator& simulator, const RunConfig& cfg) {
  CCPRED_CHECK_MSG(simulator.feasible(cfg), "infeasible configuration");
  const auto& m = simulator.machine();
  const double n = static_cast<double>(cfg.o) + cfg.v;
  // Cholesky decomposition of the two-electron integrals: ~10 N^4 flops at
  // modest GEMM efficiency, distributed over the job's workers, plus a
  // setup barrier.
  const double flops = 10.0 * n * n * n * n * m.calibration;
  const double rate = m.gpu_tflops * 1e12 * 0.5;
  return flops / (static_cast<double>(m.workers(cfg.nodes)) * rate) +
         0.5 * m.fixed_iteration_s;
}

JobEstimate estimate_job(const CcsdSimulator& simulator, const RunConfig& cfg,
                         const ConvergenceModel& convergence) {
  JobEstimate job;
  job.iterations = convergence.iterations_to_converge();
  job.setup_s = setup_time_s(simulator, cfg);
  job.iteration_s = simulator.iteration_time(cfg);
  job.total_s = job.setup_s + job.iterations * job.iteration_s;
  job.node_hours = CcsdSimulator::node_hours(cfg, job.total_s);
  return job;
}

}  // namespace ccpred::sim
