#pragma once

/// \file drift_detector.hpp
/// Rolling comparison of what the serving model predicted against what
/// users measured. Each observe() pushes one (predicted, measured) pair
/// into a fixed window; the detector reports the window's mean absolute
/// percentage error (MAPE, the paper's headline accuracy metric) and its
/// mean signed residual (bias direction). `drifting()` trips once the
/// window holds at least `min_samples` pairs AND the rolling MAPE exceeds
/// the threshold — the trigger for a background refit.
///
/// Not thread-safe by itself; the OnlineTrainer serializes access per
/// stream.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccpred::serve::online {

/// Detection knobs. The defaults suit a serving model whose offline MAPE
/// is a few percent: 25% rolling error is unambiguous regime change, not
/// measurement noise.
struct DriftOptions {
  std::size_t window = 64;        ///< pairs kept in the rolling window
  std::size_t min_samples = 16;   ///< pairs required before drifting() can trip
  double mape_threshold = 0.25;   ///< rolling MAPE above this = drift
};

/// See file comment.
class DriftDetector {
 public:
  explicit DriftDetector(DriftOptions options);

  /// Records one served-prediction / reported-measurement pair. Pairs with
  /// non-finite values or non-positive measurements are ignored (the parse
  /// boundary already rejects them; this is defense in depth).
  void observe(double predicted_s, double measured_s);

  /// Mean |predicted - measured| / measured over the window (0 if empty).
  double rolling_mape() const;

  /// Mean signed (predicted - measured) over the window — negative means
  /// the model now under-predicts (e.g. the machine got slower).
  double mean_residual() const;

  /// Pairs currently in the window.
  std::size_t samples() const { return ape_.size(); }

  /// Pairs ever observed (monotonic across resets).
  std::uint64_t observed() const { return observed_; }

  /// True when the window is warm and its MAPE exceeds the threshold.
  bool drifting() const;

  /// Forgets the window (called after a promotion: the new model gets a
  /// clean slate instead of inheriting its predecessor's errors).
  void reset();

  const DriftOptions& options() const { return options_; }

 private:
  DriftOptions options_;
  std::vector<double> ape_;       ///< ring of absolute percentage errors
  std::vector<double> residual_;  ///< ring of signed residuals (s)
  std::size_t next_ = 0;          ///< ring write position
  std::uint64_t observed_ = 0;
};

}  // namespace ccpred::serve::online
