/// Kernel-model engine bench: the fast GP path (cached squared distances,
/// blocked Cholesky, batched variances, incremental refits) against the
/// scalar reference engine, on the paper's Aurora campaign.
///
/// Three timed sections:
///   - GP fit with the (gamma, noise) grid search (Fig. 3 hyper-parameter
///     optimization), fast vs reference engine
///   - pool-sized batch predict_with_std, fast vs reference
///   - one uncertainty-sampling active-learning arm (Fig. 3 US config),
///     fast engine + incremental refits vs reference engine + from-scratch
///     refits, compared per round
///
/// Gates (exit nonzero on failure):
///   - GP grid fit: fast >= 3x faster than reference
///   - batch predict_with_std: fast >= 4x faster than reference
///   - per-AL-round: fast >= 2x faster than reference
///   - fast and reference predictions agree to 1e-9 relative
///   - RBF exp map: AVX2 table >= 2x the scalar table, <= 1e-12 relative
///   - squared-distance build: AVX2 table >= 2x the scalar table,
///     bit-identical (the two SIMD gates apply only on AVX2+FMA hosts)
///
/// Emits the measurements to BENCH_kernel_engine.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ccpred/active/loop.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/active/uncertainty_sampling.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/core/gaussian_process.hpp"
#include "ccpred/simd/simd.hpp"

namespace {

/// Best-of-`reps` wall time for one call of `fn`.
template <typename Fn>
double best_time_s(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    ccpred::Stopwatch watch;
    fn();
    best = std::min(best, watch.elapsed_s());
  }
  return best;
}

double max_rel_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1e-12});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

}  // namespace

int main() {
  using namespace ccpred;

  const bool fast_mode = bench::fast_mode();
  const auto data = bench::load_paper_data("aurora");
  const std::size_t threads = ThreadPool::global().size();

  // The fit/predict sections use a fixed-size campaign in both modes: the
  // engine's algorithmic advantage is an asymptotic property, so shrinking
  // the matrices (as fast mode does for the AL section) would just measure
  // fixed overheads. ~1s of reference factorization is still smoke-sized.
  data::GeneratorOptions gen_opt;
  gen_opt.seed = 2025;
  gen_opt.target_total = 1800;
  const auto campaign = data::generate_dataset(
      data.simulator, data::problems_for(data.simulator.machine().name),
      gen_opt);
  const std::size_t n_fit = std::min<std::size_t>(1100, campaign.size());
  std::vector<std::size_t> fit_rows(n_fit);
  std::iota(fit_rows.begin(), fit_rows.end(), std::size_t{0});
  const auto fit_set = campaign.select(fit_rows);
  const linalg::Matrix x_fit = fit_set.features();
  const std::vector<double> y_fit = fit_set.targets();

  // Query batch: the whole campaign, the advisor's sweep shape.
  const linalg::Matrix x_pool = campaign.features();

  std::printf(
      "== Kernel-model engine (aurora campaign, n_fit=%zu, pool=%zu, "
      "%zu threads%s) ==\n\n",
      n_fit, x_pool.rows(), threads, fast_mode ? ", fast mode" : "");

  // ---- GP fit with the (gamma, noise) grid (Fig. 3 US model) ----
  ml::GaussianProcessRegression gp_fast(0.5, 1e-4, true, true);
  ml::GaussianProcessRegression gp_ref(0.5, 1e-4, true, true);
  gp_ref.set_params({{"engine", 1.0}});

  const int fit_reps = fast_mode ? 1 : 2;
  const double fit_fast_s =
      best_time_s(fit_reps, [&] { gp_fast.fit(x_fit, y_fit); });
  const double fit_ref_s =
      best_time_s(fit_reps, [&] { gp_ref.fit(x_fit, y_fit); });
  const double fit_speedup = fit_ref_s / fit_fast_s;

  // ---- pool-sized batch predict_with_std ----
  const int predict_reps = fast_mode ? 5 : 3;
  std::vector<double> mean_fast, std_fast, mean_ref, std_ref;
  const double predict_fast_s = best_time_s(
      predict_reps, [&] { gp_fast.predict_with_std(x_pool, mean_fast, std_fast); });
  const double predict_ref_s = best_time_s(
      predict_reps, [&] { gp_ref.predict_with_std(x_pool, mean_ref, std_ref); });
  const double predict_speedup = predict_ref_s / predict_fast_s;

  const double mean_rel = max_rel_diff(mean_fast, mean_ref);
  double std_rel = 0.0;  // variances on the mean's scale (cancellation)
  for (std::size_t i = 0; i < std_fast.size(); ++i) {
    const double scale = std::max(std::abs(mean_fast[i]), 1e-12);
    std_rel = std::max(std_rel, std::abs(std_fast[i] - std_ref[i]) / scale);
  }

  // ---- active learning, Fig. 3 US arm ----
  al::ActiveLearningOptions al_ref_opt;
  al_ref_opt.n_initial = 50;
  al_ref_opt.query_size = 50;
  al_ref_opt.n_queries = fast_mode ? 6 : 10;
  al::ActiveLearningOptions al_fast_opt = al_ref_opt;
  al_fast_opt.incremental_refit = true;
  al_fast_opt.refit_cadence = 5;

  ml::GaussianProcessRegression al_proto_fast(0.5, 1e-4, true, true);
  ml::GaussianProcessRegression al_proto_ref(0.5, 1e-4, true, true);
  al_proto_ref.set_params({{"engine", 1.0}});

  al::UncertaintySampling us_fast, us_ref;
  std::size_t al_rounds = 0;
  Stopwatch al_fast_watch;
  const auto al_fast_result = al::run_active_learning(
      data.split.train, data.split.test, al_proto_fast, us_fast, al_fast_opt);
  const double al_fast_s = al_fast_watch.elapsed_s();
  Stopwatch al_ref_watch;
  const auto al_ref_result = al::run_active_learning(
      data.split.train, data.split.test, al_proto_ref, us_ref, al_ref_opt);
  const double al_ref_s = al_ref_watch.elapsed_s();
  al_rounds = al_fast_result.rounds.size();
  const double al_fast_round_s = al_fast_s / static_cast<double>(al_rounds);
  const double al_ref_round_s =
      al_ref_s / static_cast<double>(al_ref_result.rounds.size());
  const double al_speedup = al_ref_round_s / al_fast_round_s;
  const double al_r2_gap =
      std::abs(al_fast_result.rounds.back().train_scores.r2 -
               al_ref_result.rounds.back().train_scores.r2);

  // ---- dispatched numeric kernels: scalar vs AVX2 tables ----
  // The two kernels behind the fast GP path, timed table-vs-table on the
  // fit set's geometry: the full n x n squared-distance build (feature-
  // major block, row sweep) and the RBF exp map over the resulting
  // distances. sqdist keeps multiply/add separate in both tables and must
  // be bit-identical; the AVX2 exp map is a Cephes-style polynomial
  // (~3e-16 vs libm), gated far below the engine-wide 1e-9.
  const std::size_t kn = x_fit.rows();
  const std::size_t kd = x_fit.cols();
  std::vector<double> xt(kd * kn);
  for (std::size_t r = 0; r < kn; ++r) {
    for (std::size_t k = 0; k < kd; ++k) xt[k * kn + r] = x_fit(r, k);
  }
  std::vector<double> d2_scalar(kn * kn), d2_avx2(kn * kn);
  const auto run_sqdist = [&](simd::Mode mode, double* out) {
    const auto& t = simd::ops_for(mode);
    for (std::size_t i = 0; i < kn; ++i) {
      t.sqdist_row(xt.data(), kn, kd, x_fit.row_ptr(i), 0, kn, out + i * kn);
    }
  };
  const int kernel_reps = fast_mode ? 3 : 5;
  const double sqdist_scalar_s = best_time_s(
      kernel_reps, [&] { run_sqdist(simd::Mode::kScalar, d2_scalar.data()); });
  const double sqdist_avx2_s = best_time_s(
      kernel_reps, [&] { run_sqdist(simd::Mode::kAvx2, d2_avx2.data()); });
  const double sqdist_speedup = sqdist_scalar_s / sqdist_avx2_s;
  const bool sqdist_identical =
      std::memcmp(d2_scalar.data(), d2_avx2.data(),
                  d2_scalar.size() * sizeof(double)) == 0;

  std::vector<double> exp_scalar(kn * kn), exp_avx2(kn * kn);
  // Bandwidth matched to the data (1/mean distance) so the mapped values
  // span (0, 1] the way a fitted kernel's do, instead of mostly
  // underflowing to zero and flattering the polynomial path.
  double mean_d2 = 0.0;
  for (double v : d2_scalar) mean_d2 += v;
  mean_d2 /= static_cast<double>(d2_scalar.size());
  const double gamma = 1.0 / std::max(mean_d2, 1e-12);
  const double exp_scalar_s = best_time_s(kernel_reps, [&] {
    simd::ops_for(simd::Mode::kScalar)
        .rbf_exp_map(d2_scalar.data(), exp_scalar.data(), kn * kn, gamma);
  });
  const double exp_avx2_s = best_time_s(kernel_reps, [&] {
    simd::ops_for(simd::Mode::kAvx2)
        .rbf_exp_map(d2_scalar.data(), exp_avx2.data(), kn * kn, gamma);
  });
  const double exp_speedup = exp_scalar_s / exp_avx2_s;
  const double exp_rel = max_rel_diff(exp_scalar, exp_avx2);
  const bool simd_gated = simd::avx2_available();

  TextTable table({"section", "path", "seconds", "speedup"},
                  "Kernel-model engine vs reference");
  table.add_row({"GP grid fit", "reference", TextTable::cell(fit_ref_s, 3),
                 "1.0x"});
  table.add_row({"GP grid fit", "fast", TextTable::cell(fit_fast_s, 3),
                 TextTable::cell(fit_speedup, 1) + "x"});
  table.add_row({"predict_with_std", "reference",
                 TextTable::cell(predict_ref_s, 4), "1.0x"});
  table.add_row({"predict_with_std", "fast",
                 TextTable::cell(predict_fast_s, 4),
                 TextTable::cell(predict_speedup, 1) + "x"});
  table.add_row({"AL round (US)", "reference",
                 TextTable::cell(al_ref_round_s, 3), "1.0x"});
  table.add_row({"AL round (US)", "fast+incremental",
                 TextTable::cell(al_fast_round_s, 3),
                 TextTable::cell(al_speedup, 1) + "x"});
  table.add_row({"sqdist build", "scalar", TextTable::cell(sqdist_scalar_s, 4),
                 "1.0x"});
  table.add_row({"sqdist build", "avx2", TextTable::cell(sqdist_avx2_s, 4),
                 TextTable::cell(sqdist_speedup, 1) + "x"});
  table.add_row({"RBF exp map", "scalar", TextTable::cell(exp_scalar_s, 4),
                 "1.0x"});
  table.add_row({"RBF exp map", "avx2", TextTable::cell(exp_avx2_s, 4),
                 TextTable::cell(exp_speedup, 1) + "x"});
  table.print();

  const bool agree_ok = mean_rel <= 1e-9 && std_rel <= 1e-9;
  const bool fit_ok = fit_speedup >= 3.0;
  const bool predict_ok = predict_speedup >= 4.0;
  const bool al_ok = al_speedup >= 2.0;
  const bool sqdist_ok =
      !simd_gated || (sqdist_speedup >= 2.0 && sqdist_identical);
  const bool exp_ok = !simd_gated || (exp_speedup >= 2.0 && exp_rel <= 1e-12);
  std::printf(
      "\nfast vs reference agreement: mean %.2e, std %.2e (target <= 1e-9): "
      "%s\n"
      "GP grid-fit speedup %.1fx (target >= 3x): %s\n"
      "batch predict_with_std speedup %.1fx (target >= 4x): %s\n"
      "per-AL-round speedup %.1fx (target >= 2x): %s\n"
      "sqdist avx2 vs scalar %.1fx, identical %s (target >= 2x): %s\n"
      "RBF exp map avx2 vs scalar %.1fx, rel %.2e (target >= 2x, <= 1e-12): "
      "%s\n"
      "final-round train R^2 gap (incremental vs scratch): %.4f\n",
      mean_rel, std_rel, agree_ok ? "PASS" : "FAIL", fit_speedup,
      fit_ok ? "PASS" : "FAIL", predict_speedup, predict_ok ? "PASS" : "FAIL",
      al_speedup, al_ok ? "PASS" : "FAIL", sqdist_speedup,
      sqdist_identical ? "yes" : "NO",
      simd_gated ? (sqdist_ok ? "PASS" : "FAIL") : "not gated (no AVX2)",
      exp_speedup, exp_rel,
      simd_gated ? (exp_ok ? "PASS" : "FAIL") : "not gated (no AVX2)",
      al_r2_gap);

  const bool pass =
      agree_ok && fit_ok && predict_ok && al_ok && sqdist_ok && exp_ok;
  std::FILE* json = std::fopen("BENCH_kernel_engine.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"machine\": \"aurora\",\n"
        "  \"fast_mode\": %s,\n"
        "  \"threads\": %zu,\n"
        "  \"fit\": {\"n\": %zu, \"reference_s\": %.6f, \"fast_s\": %.6f, "
        "\"speedup\": %.3f},\n"
        "  \"predict_with_std\": {\"batch\": %zu, \"reference_s\": %.6f, "
        "\"fast_s\": %.6f, \"speedup\": %.3f, \"mean_rel_diff\": %.3e, "
        "\"std_rel_diff\": %.3e},\n"
        "  \"active_learning\": {\"rounds\": %zu, \"reference_round_s\": "
        "%.6f, \"fast_round_s\": %.6f, \"speedup\": %.3f, "
        "\"final_r2_gap\": %.6f},\n"
        "  \"simd_kernels\": {\"n\": %zu, "
        "\"sqdist_scalar_s\": %.6f, \"sqdist_avx2_s\": %.6f, "
        "\"sqdist_speedup\": %.3f, \"sqdist_identical\": %s, "
        "\"exp_scalar_s\": %.6f, \"exp_avx2_s\": %.6f, "
        "\"exp_speedup\": %.3f, \"exp_rel_diff\": %.3e, \"gated\": %s},\n"
        "  \"provenance\": %s,\n"
        "  \"pass\": %s\n"
        "}\n",
        fast_mode ? "true" : "false", threads, n_fit, fit_ref_s, fit_fast_s,
        fit_speedup, x_pool.rows(), predict_ref_s, predict_fast_s,
        predict_speedup, mean_rel, std_rel, al_rounds, al_ref_round_s,
        al_fast_round_s, al_speedup, al_r2_gap, kn, sqdist_scalar_s,
        sqdist_avx2_s, sqdist_speedup, sqdist_identical ? "true" : "false",
        exp_scalar_s, exp_avx2_s, exp_speedup, exp_rel,
        simd_gated ? "true" : "false", bench::provenance_json().c_str(),
        pass ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_kernel_engine.json\n");
  }

  return pass ? 0 : 1;
}
