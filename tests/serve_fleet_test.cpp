// Tests for the serving fleet: the consistent-hash ring (stable assignment
// under membership churn), the in-process ShardFleet (failover to a live
// replica, kill/restart rejoining with an empty cache but bit-identical
// answers) and the epoll EventLoopServer end to end over real sockets
// (response ordering, JSON/binary interleaving on one connection, garbage
// input, oversized declared lengths, mid-frame disconnects).

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ccpred/common/error.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/serialize.hpp"
#include "ccpred/serve/event_loop.hpp"
#include "ccpred/serve/fleet.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/server.hpp"
#include "ccpred/serve/wire.hpp"
#include "test_util.hpp"

namespace ccpred::serve {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------------ HashRing

std::vector<std::uint64_t> probe_keys(std::size_t n) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(HashRing::key_hash("aurora", "gb", static_cast<int>(i % 211),
                                      static_cast<int>(i)));
  }
  return keys;
}

TEST(HashRingTest, RemovalMovesOnlyTheDepartedShardsKeys) {
  HashRing ring;
  for (int s = 0; s < 5; ++s) ring.add(s);
  const auto keys = probe_keys(4000);
  std::vector<int> before;
  before.reserve(keys.size());
  for (const auto k : keys) before.push_back(ring.owner(k));

  ring.remove(2);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const int now = ring.owner(keys[i]);
    if (before[i] == 2) {
      EXPECT_NE(now, 2);  // departed shard's keys must land elsewhere
      ++moved;
    } else {
      // THE consistent-hashing property: everyone else's keys stay put.
      EXPECT_EQ(now, before[i]) << "key " << i << " moved needlessly";
    }
  }
  EXPECT_GT(moved, 0u);

  // Adding the shard back restores the original assignment exactly.
  ring.add(2);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(ring.owner(keys[i]), before[i]);
  }
}

TEST(HashRingTest, PreferenceListsStartAtOwnerAndAreDistinct) {
  HashRing ring;
  for (int s = 0; s < 4; ++s) ring.add(s);
  for (const auto k : probe_keys(500)) {
    const auto prefs = ring.preference(k, 4);
    ASSERT_EQ(prefs.size(), 4u);
    EXPECT_EQ(prefs[0], ring.owner(k));
    EXPECT_EQ(std::set<int>(prefs.begin(), prefs.end()).size(), 4u);
  }
  // Asking for more shards than exist returns what exists.
  EXPECT_EQ(ring.preference(probe_keys(1)[0], 16).size(), 4u);
}

TEST(HashRingTest, OwnershipIsReasonablyBalanced) {
  HashRing ring(64);
  for (int s = 0; s < 5; ++s) ring.add(s);
  std::map<int, std::size_t> counts;
  const auto keys = probe_keys(10000);
  for (const auto k : keys) ++counts[ring.owner(k)];
  for (int s = 0; s < 5; ++s) {
    // With 64 vnodes per shard the slices are uneven but every shard must
    // own a real fraction of the keyspace (fair share would be 20%).
    EXPECT_GT(counts[s], keys.size() / 20) << "shard " << s << " starved";
  }
}

TEST(HashRingTest, KeyHashSeparatesEveryField) {
  const auto base = HashRing::key_hash("aurora", "gb", 134, 951);
  EXPECT_NE(base, HashRing::key_hash("frontier", "gb", 134, 951));
  EXPECT_NE(base, HashRing::key_hash("aurora", "rf", 134, 951));
  EXPECT_NE(base, HashRing::key_hash("aurora", "gb", 135, 951));
  EXPECT_NE(base, HashRing::key_hash("aurora", "gb", 134, 952));
  // The separator keeps concatenation ambiguity out of the key.
  EXPECT_NE(HashRing::key_hash("ab", "c", 1, 2),
            HashRing::key_hash("a", "bc", 1, 2));
  // Deterministic: the serverd router and its shard children must agree.
  EXPECT_EQ(base, HashRing::key_hash("aurora", "gb", 134, 951));
}

// ---------------------------------------------------------------- ShardFleet

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ccpred_fleet_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

const ml::GradientBoostingRegressor& fleet_gb() {
  static const auto* model = [] {
    const auto split = test::small_campaign(250);
    auto* m = new ml::GradientBoostingRegressor(15);
    m->fit(split.train.features(), split.train.targets());
    return m;
  }();
  return *model;
}

struct FleetFixture {
  FleetFixture(const std::string& name, FleetOptions opt)
      : dir(scratch_dir(name)), registry(dir) {
    ml::save_gb(fleet_gb(), registry.artifact_path("aurora", "gb"));
    opt.serve.threads = 2;
    fleet = std::make_unique<ShardFleet>(registry, opt);
  }

  std::string dir;
  ModelRegistry registry;
  std::unique_ptr<ShardFleet> fleet;
};

Request stq(int o, int v) {
  Request r;
  r.op = Op::kStq;
  r.machine = "aurora";
  r.o = o;
  r.v = v;
  return r;
}

const std::vector<std::pair<int, int>> kProblems = {
    {44, 260}, {85, 698}, {116, 575}, {134, 951}, {99, 718}, {70, 400}};

TEST(ShardFleetTest, RoutesDeterministicallyAndSpreadsKeys) {
  FleetOptions opt;
  opt.shards = 3;
  FleetFixture f("routing", opt);
  std::set<int> shards_hit;
  for (const auto& [o, v] : kProblems) {
    const int first = f.fleet->route_of(stq(o, v));
    ASSERT_GE(first, 0);
    shards_hit.insert(first);
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(f.fleet->route_of(stq(o, v)), first);
    }
  }
  // Six distinct keys across three shards: more than one shard must serve.
  EXPECT_GE(shards_hit.size(), 2u);
  // Stats are a fan-out, not a routed key.
  Request stats;
  stats.op = Op::kStats;
  EXPECT_EQ(f.fleet->route_of(stats), -1);
}

TEST(ShardFleetTest, FailoverReRoutesToALiveReplicaBitIdentically) {
  FleetOptions opt;
  opt.shards = 3;
  FleetFixture f("failover", opt);
  const Request req = stq(134, 951);
  const Response before = f.fleet->handle(req);
  ASSERT_TRUE(before.ok) << before.error;

  const int owner = f.fleet->route_of(req);
  ASSERT_GE(owner, 0);
  ASSERT_TRUE(f.fleet->kill_shard(static_cast<std::size_t>(owner)));
  EXPECT_FALSE(f.fleet->alive(static_cast<std::size_t>(owner)));

  const int replica = f.fleet->route_of(req);
  ASSERT_GE(replica, 0);
  EXPECT_NE(replica, owner);
  EXPECT_TRUE(f.fleet->alive(static_cast<std::size_t>(replica)));

  // Sweeps are deterministic, so the replica's answer is bit-identical
  // (it just cannot be a cache hit — the replica never saw this key).
  const Response after = f.fleet->handle(req);
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.nodes, before.nodes);
  EXPECT_EQ(after.tile, before.tile);
  EXPECT_EQ(after.time_s, before.time_s);
  EXPECT_EQ(after.node_hours, before.node_hours);
  EXPECT_GE(f.fleet->counters().failovers, 1u);
}

TEST(ShardFleetTest, TheLastLiveShardCannotBeKilled) {
  FleetOptions opt;
  opt.shards = 3;
  FleetFixture f("lastlive", opt);
  EXPECT_TRUE(f.fleet->kill_shard(0));
  EXPECT_TRUE(f.fleet->kill_shard(1));
  EXPECT_FALSE(f.fleet->kill_shard(2)) << "killed the last live shard";
  EXPECT_TRUE(f.fleet->alive(2));
  // Killing a dead shard is a no-op, not a double free.
  EXPECT_FALSE(f.fleet->kill_shard(0));
  // Every key still routes to the survivor.
  for (const auto& [o, v] : kProblems) {
    EXPECT_EQ(f.fleet->route_of(stq(o, v)), 2);
    EXPECT_TRUE(f.fleet->handle(stq(o, v)).ok);
  }
  EXPECT_EQ(f.fleet->counters().alive, 1u);
  EXPECT_EQ(f.fleet->counters().unrouteable, 0u);
}

TEST(ShardFleetTest, RestartedShardRejoinsWithEmptyCacheButIdenticalAnswers) {
  FleetOptions opt;
  opt.shards = 3;
  FleetFixture f("restart", opt);
  const Request req = stq(85, 698);
  const int owner = f.fleet->route_of(req);

  const Response first = f.fleet->handle(req);
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.cache_hit);
  const Response second = f.fleet->handle(req);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cache_hit);  // owner's sweep cache is warm

  ASSERT_TRUE(f.fleet->kill_shard(static_cast<std::size_t>(owner)));
  // Restarting an alive shard is refused; the dead one revives.
  EXPECT_FALSE(
      f.fleet->restart_shard(static_cast<std::size_t>((owner + 1) % 3)));
  ASSERT_TRUE(f.fleet->restart_shard(static_cast<std::size_t>(owner)));
  EXPECT_TRUE(f.fleet->alive(static_cast<std::size_t>(owner)));
  EXPECT_EQ(f.fleet->route_of(req), owner);  // ownership handed back

  const Response rejoined = f.fleet->handle(req);
  ASSERT_TRUE(rejoined.ok) << rejoined.error;
  EXPECT_FALSE(rejoined.cache_hit);  // fresh server, empty cache...
  EXPECT_EQ(rejoined.nodes, first.nodes);  // ...but bit-identical values
  EXPECT_EQ(rejoined.tile, first.tile);
  EXPECT_EQ(rejoined.time_s, first.time_s);
  EXPECT_EQ(rejoined.node_hours, first.node_hours);
  EXPECT_EQ(rejoined.model_version, first.model_version);

  const FleetCounters c = f.fleet->counters();
  EXPECT_EQ(c.kills, 1u);
  EXPECT_EQ(c.restarts, 1u);
  EXPECT_EQ(c.alive, 3u);
}

TEST(ShardFleetTest, StatsAggregateAcrossShardsAndBatchesAnswerInOrder) {
  FleetOptions opt;
  opt.shards = 3;
  FleetFixture f("stats", opt);
  std::vector<Request> batch;
  for (int i = 0; i < static_cast<int>(kProblems.size()); ++i) {
    Request r = stq(kProblems[static_cast<std::size_t>(i)].first,
                    kProblems[static_cast<std::size_t>(i)].second);
    r.id = "b" + std::to_string(i);
    batch.push_back(std::move(r));
  }
  std::vector<Response> got;
  std::mutex m;
  std::condition_variable cv;
  bool done_flag = false;
  f.fleet->submit_batch_with(batch, [&](std::vector<Response> rs) {
    std::lock_guard<std::mutex> lock(m);
    got = std::move(rs);
    done_flag = true;
    cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return done_flag; });
  }
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].ok) << got[i].error;
    EXPECT_EQ(got[i].id, "b" + std::to_string(i));  // order preserved
  }

  Request stats;
  stats.op = Op::kStats;
  const Response agg = f.fleet->handle(stats);
  ASSERT_TRUE(agg.ok);
  ASSERT_TRUE(agg.has_stats);
  EXPECT_GE(agg.stats.requests, batch.size());
  EXPECT_EQ(f.fleet->counters().routed, batch.size());
}

// ----------------------------------------------------------- EventLoopServer

struct TestClient {
  explicit TestClient(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
  }
  ~TestClient() { close(); }

  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }

  void send(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Blocking buffered read of one '\n'-terminated line (without the \n).
  /// Returns empty on EOF.
  std::string read_line() {
    while (true) {
      const std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return line;
      }
      if (!fill()) return "";
    }
  }

  /// Blocking read of one full binary response frame.
  std::vector<Response> read_frame() {
    wire::FrameHeader header;
    while (true) {
      std::string error;
      const auto status = wire::probe_frame(
          reinterpret_cast<const unsigned char*>(buf.data()), buf.size(),
          &header, &error);
      EXPECT_NE(status, wire::FrameStatus::kBad) << error;
      if (status == wire::FrameStatus::kHeader &&
          buf.size() >= wire::kHeaderBytes + header.payload_bytes) {
        const auto out = wire::decode_response_frame(
            header, reinterpret_cast<const unsigned char*>(buf.data()) +
                        wire::kHeaderBytes);
        buf.erase(0, wire::kHeaderBytes + header.payload_bytes);
        return out;
      }
      if (!fill()) return {};
    }
  }

  bool at_eof() { return buf.empty() && !fill(); }

  int fd = -1;
  std::string buf;

 private:
  bool fill() {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buf.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
  }
};

/// Synchronous echo dispatch: answers ok with the request's op/id, plus
/// nodes = o so tests can see the payload round-trip.
EventLoopServer::Dispatch echo_dispatch() {
  return [](Request req, EventLoopServer::Completion done) {
    Response r;
    r.ok = true;
    r.op = op_name(req.op);
    r.id = req.id;
    r.has_recommendation = true;
    r.nodes = req.o;
    done(std::move(r));
  };
}

EventLoopServer::BatchDispatch echo_batch_dispatch() {
  return [](std::vector<Request> batch,
            EventLoopServer::BatchCompletion done) {
    std::vector<Response> out;
    out.reserve(batch.size());
    for (const Request& req : batch) {
      Response r;
      r.ok = true;
      r.op = op_name(req.op);
      r.id = req.id;
      r.has_recommendation = true;
      r.nodes = req.o;
      out.push_back(std::move(r));
    }
    done(std::move(out));
  };
}

std::string stq_line(int i) {
  return R"({"op":"stq","o":)" + std::to_string(i + 1) + R"(,"v":2,"id":"q)" +
         std::to_string(i) + R"("})" + "\n";
}

TEST(EventLoopServerTest, BindsAnEphemeralPort) {
  EventLoopServer server(echo_dispatch());
  EXPECT_GT(server.port(), 0);
}

TEST(EventLoopServerTest, ResponsesKeepRequestOrderAcrossReversedCompletions) {
  // The dispatch parks every completion and fires them in REVERSE once all
  // eight arrived — the loop must still deliver responses in request order.
  constexpr int kN = 8;
  std::mutex m;
  std::vector<std::pair<Request, EventLoopServer::Completion>> parked;
  std::thread completer;
  auto dispatch = [&](Request req, EventLoopServer::Completion done) {
    std::lock_guard<std::mutex> lock(m);
    parked.emplace_back(std::move(req), std::move(done));
    if (parked.size() == kN) {
      auto batch = std::move(parked);
      completer = std::thread([batch = std::move(batch)]() mutable {
        for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
          Response r;
          r.ok = true;
          r.op = op_name(it->first.op);
          r.id = it->first.id;
          it->second(std::move(r));
        }
      });
    }
  };
  {
    EventLoopServer server(dispatch);
    TestClient client(server.port());
    std::string all;
    for (int i = 0; i < kN; ++i) all += stq_line(i);
    client.send(all);
    for (int i = 0; i < kN; ++i) {
      const std::string line = client.read_line();
      const auto rec = parse_record(line);
      EXPECT_EQ(rec.at("id"), "q" + std::to_string(i)) << line;
    }
  }
  if (completer.joinable()) completer.join();
}

TEST(EventLoopServerTest, InterleavesJsonAndBinaryOnOneConnection) {
  EventLoopServer server(echo_dispatch(), echo_batch_dispatch());
  TestClient client(server.port());

  std::vector<Request> batch;
  for (int i = 0; i < 3; ++i) {
    Request r;
    r.op = Op::kBq;
    r.o = 10 + i;
    r.v = 2;
    r.id = "f" + std::to_string(i);
    batch.push_back(std::move(r));
  }
  client.send(stq_line(0));
  client.send(wire::encode_request_frame(batch));
  client.send(stq_line(1));

  const auto first = parse_record(client.read_line());
  EXPECT_EQ(first.at("id"), "q0");
  const auto frame = client.read_frame();
  ASSERT_EQ(frame.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(frame[static_cast<std::size_t>(i)].ok);
    EXPECT_EQ(frame[static_cast<std::size_t>(i)].id, "f" + std::to_string(i));
    EXPECT_EQ(frame[static_cast<std::size_t>(i)].nodes, 10 + i);
  }
  const auto second = parse_record(client.read_line());
  EXPECT_EQ(second.at("id"), "q1");

  const EventLoopStats stats = server.stats();
  EXPECT_EQ(stats.frames_in, 1u);
  EXPECT_EQ(stats.lines_in, 2u);
  EXPECT_EQ(stats.requests_in, 5u);
}

TEST(EventLoopServerTest, BinaryFramesFanOutWithoutABatchDispatch) {
  // batch_dispatch == nullptr: frame records flow through the per-request
  // dispatch and are stitched back into one response frame.
  EventLoopServer server(echo_dispatch());
  TestClient client(server.port());
  std::vector<Request> batch;
  for (int i = 0; i < 4; ++i) {
    Request r;
    r.op = Op::kStq;
    r.o = 7 * (i + 1);
    r.v = 2;
    r.id = "r" + std::to_string(i);
    batch.push_back(std::move(r));
  }
  client.send(wire::encode_request_frame(batch));
  const auto replies = client.read_frame();
  ASSERT_EQ(replies.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(replies[static_cast<std::size_t>(i)].id, "r" + std::to_string(i));
    EXPECT_EQ(replies[static_cast<std::size_t>(i)].nodes, 7 * (i + 1));
  }
}

TEST(EventLoopServerTest, GarbageJsonLineAnswersErrorAndConnectionSurvives) {
  EventLoopServer server(echo_dispatch());
  TestClient client(server.port());
  client.send("this is not json\n");
  const auto err = parse_record(client.read_line());
  EXPECT_EQ(err.at("ok"), "false");
  // The stream is still usable: a parse error poisons one line, not the
  // connection.
  client.send(stq_line(5));
  EXPECT_EQ(parse_record(client.read_line()).at("id"), "q5");
  EXPECT_GE(server.stats().protocol_errors, 1u);
}

TEST(EventLoopServerTest, BadMagicAnswersErrorFrameAndCloses) {
  EventLoopServer server(echo_dispatch());
  TestClient client(server.port());
  // 0xC3 commits the stream to a frame; a wrong continuation byte is
  // unrecoverable (framing is lost), so: one error frame, then EOF.
  client.send(std::string("\xC3XPB", 4) + std::string(16, 'x'));
  const auto replies = client.read_frame();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].ok);
  EXPECT_TRUE(client.at_eof());
}

TEST(EventLoopServerTest, OversizedDeclaredLengthRejectedFromHeaderAlone) {
  EventLoopServer server(echo_dispatch());
  TestClient client(server.port());
  // Valid magic/version/kind, but a declared payload over the cap. Only
  // the 12 header bytes are ever sent — the server must reject without
  // waiting for (or allocating) the declared two gigabytes.
  std::string header(wire::kHeaderBytes, '\0');
  header[0] = static_cast<char>(0xC3);
  header[1] = 'C';
  header[2] = 'P';
  header[3] = 'B';
  header[4] = static_cast<char>(wire::kVersion);
  header[5] = 0;
  header[6] = 1;
  header[7] = 0;
  header[8] = header[9] = header[10] = 0;
  header[11] = static_cast<char>(0x80);  // payload_bytes = 2 GiB
  client.send(header);
  const auto replies = client.read_frame();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].ok);
  EXPECT_TRUE(client.at_eof());
}

TEST(EventLoopServerTest, MidFrameDisconnectIsHarmless) {
  EventLoopServer server(echo_dispatch(), echo_batch_dispatch());
  {
    TestClient half(server.port());
    Request r;
    r.op = Op::kStq;
    r.o = 3;
    r.v = 2;
    const std::string frame = wire::encode_request_frame({r});
    half.send(frame.substr(0, frame.size() / 2));
    half.close();  // peer vanishes mid-frame
  }
  // The server must have reaped the dead connection and still serve.
  TestClient client(server.port());
  client.send(stq_line(9));
  EXPECT_EQ(parse_record(client.read_line()).at("id"), "q9");
}

TEST(EventLoopServerTest, ManyConcurrentConnectionsAllAnswered) {
  EventLoopServer server(echo_dispatch());
  constexpr int kConns = 32;
  std::vector<std::unique_ptr<TestClient>> clients;
  clients.reserve(kConns);
  for (int c = 0; c < kConns; ++c) {
    clients.push_back(std::make_unique<TestClient>(server.port()));
    clients.back()->send(stq_line(c));
  }
  for (int c = 0; c < kConns; ++c) {
    EXPECT_EQ(parse_record(clients[static_cast<std::size_t>(c)]->read_line())
                  .at("id"),
              "q" + std::to_string(c));
  }
  EXPECT_EQ(server.stats().connections_accepted,
            static_cast<std::uint64_t>(kConns));
}

}  // namespace
}  // namespace ccpred::serve
