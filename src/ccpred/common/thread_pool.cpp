#include "ccpred/common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <utility>

namespace ccpred {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // packaged_task is move-only and std::function requires copyability, so
  // the queue stores a shared_ptr-owning thunk.
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  auto fut = packaged->get_future();
  post([packaged] { (*packaged)(); });
  return fut;
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::try_post(std::function<void()> task, std::size_t max_queue) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.size() >= max_queue) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

std::size_t ThreadPool::queue_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

namespace {

std::size_t global_pool_size_from_env() {
  const char* v = std::getenv("CCPRED_THREADS");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed <= 0) return 0;
  return static_cast<std::size_t>(parsed);
}

}  // namespace

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(global_pool_size_from_env());
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // post()'s contract: the enqueued thunk does not throw
  }
}

TaskGroup::TaskGroup(ThreadPool& pool) : pool_(pool) {}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::run(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_.post([this, task = std::move(task)] {
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (err && !error_) error_ = err;
    if (--pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  if (error_) {
    std::exception_ptr err = std::exchange(error_, nullptr);
    std::rethrow_exception(err);
  }
}

namespace {
thread_local bool in_parallel_region_flag = false;
}  // namespace

bool in_parallel_region() { return in_parallel_region_flag; }

void set_in_parallel_region(bool value) { in_parallel_region_flag = value; }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &ThreadPool::global();

  const std::size_t n = end - begin;
  const std::size_t workers = std::min(pool->size(), n);

  if (workers <= 1 || in_parallel_region_flag) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  const std::size_t chunk = (n + workers - 1) / workers;
  TaskGroup group(*pool);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    group.run([lo, hi, &body] {
      in_parallel_region_flag = true;
      for (std::size_t i = lo; i < hi; ++i) body(i);
      in_parallel_region_flag = false;
    });
  }
  group.wait();  // rethrows the first chunk exception, if any
}

}  // namespace ccpred
