#include "ccpred/core/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ccpred/common/error.hpp"

namespace ccpred::ml {

DecisionTreeRegressor::DecisionTreeRegressor(TreeOptions options)
    : options_(options) {
  CCPRED_CHECK_MSG(options_.max_depth >= 0, "max_depth must be >= 0");
  CCPRED_CHECK_MSG(options_.min_samples_split >= 2,
                   "min_samples_split must be >= 2");
  CCPRED_CHECK_MSG(options_.min_samples_leaf >= 1,
                   "min_samples_leaf must be >= 1");
  CCPRED_CHECK_MSG(options_.max_bins >= 2 && options_.max_bins <= 60000,
                   "max_bins must be in [2, 60000]");
}

// ---------------------------------------------------------------------------
// Quantile binning (histogram mode)
// ---------------------------------------------------------------------------

FeatureBins FeatureBins::build(const linalg::Matrix& x, int max_bins) {
  CCPRED_CHECK_MSG(max_bins >= 2 && max_bins <= 60000,
                   "max_bins must be in [2, 60000]");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot bin an empty matrix");
  FeatureBins fb;
  fb.n_ = x.rows();
  fb.d_ = x.cols();
  fb.edges_.resize(fb.d_);
  fb.offsets_.assign(fb.d_ + 1, 0);

  std::vector<double> col(fb.n_);
  std::vector<double> distinct;
  for (std::size_t f = 0; f < fb.d_; ++f) {
    for (std::size_t r = 0; r < fb.n_; ++r) col[r] = x(r, f);
    std::sort(col.begin(), col.end());
    distinct.clear();
    for (double v : col) {
      if (distinct.empty() || v != distinct.back()) distinct.push_back(v);
    }
    auto& edges = fb.edges_[f];
    edges.clear();
    const std::size_t m = distinct.size();
    if (m <= static_cast<std::size_t>(max_bins)) {
      // One bin per distinct value: the candidate-threshold set is exactly
      // the exact-mode midpoints, so histogram splits lose nothing.
      for (std::size_t i = 0; i + 1 < m; ++i) {
        edges.push_back(0.5 * (distinct[i] + distinct[i + 1]));
      }
    } else {
      // Quantile cuts over the sorted values (duplicates keep their mass),
      // snapped to the midpoint below the cut value so every edge separates
      // two distinct data values.
      for (int b = 1; b < max_bins; ++b) {
        const std::size_t rank =
            static_cast<std::size_t>(b) * fb.n_ / static_cast<std::size_t>(max_bins);
        const double v = col[rank];
        const auto it = std::lower_bound(distinct.begin(), distinct.end(), v);
        const std::size_t idx =
            static_cast<std::size_t>(it - distinct.begin());
        if (idx == 0) continue;
        const double edge = 0.5 * (distinct[idx - 1] + distinct[idx]);
        if (edges.empty() || edge > edges.back()) edges.push_back(edge);
      }
    }
    fb.offsets_[f + 1] =
        fb.offsets_[f] + static_cast<int>(edges.size()) + 1;
  }

  fb.codes_.resize(fb.n_ * fb.d_);
  for (std::size_t r = 0; r < fb.n_; ++r) {
    for (std::size_t f = 0; f < fb.d_; ++f) {
      const auto& edges = fb.edges_[f];
      // First edge >= x: code(r, f) <= b  ⇔  x(r, f) <= edges[b].
      const auto it =
          std::lower_bound(edges.begin(), edges.end(), x(r, f));
      fb.codes_[r * fb.d_ + f] =
          static_cast<std::uint16_t>(it - edges.begin());
    }
  }
  return fb;
}

// ---------------------------------------------------------------------------
// Exact split finding (reference path)
// ---------------------------------------------------------------------------

struct DecisionTreeRegressor::BuildContext {
  const linalg::Matrix* x = nullptr;
  const std::vector<double>* y = nullptr;
  std::vector<double> importance;
  int effective_max_depth = 64;
  int max_features = 0;
  Rng rng{1};
  // Scratch reused across nodes to avoid per-node allocation.
  std::vector<std::pair<double, double>> sorted;  // (feature value, target)
};

namespace {

/// Best split of `rows` on `feature`: returns (sse_reduction, threshold,
/// left_count) or sse_reduction <= 0 if no valid split exists.
struct SplitCandidate {
  double gain = -1.0;
  double threshold = 0.0;
  std::size_t left_count = 0;
};

SplitCandidate best_split_on_feature(
    const linalg::Matrix& x, const std::vector<double>& y,
    const std::vector<std::size_t>& rows, std::size_t feature,
    int min_samples_leaf, std::vector<std::pair<double, double>>& sorted) {
  const std::size_t n = rows.size();
  sorted.clear();
  sorted.reserve(n);
  for (auto r : rows) sorted.emplace_back(x(r, feature), y[r]);
  std::sort(sorted.begin(), sorted.end());

  double total = 0.0;
  for (const auto& [v, t] : sorted) total += t;

  SplitCandidate best;
  double left_sum = 0.0;
  const auto min_leaf = static_cast<std::size_t>(min_samples_leaf);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    left_sum += sorted[i].second;
    if (sorted[i].first == sorted[i + 1].first) continue;  // tied values
    const std::size_t nl = i + 1;
    const std::size_t nr = n - nl;
    if (nl < min_leaf || nr < min_leaf) continue;
    // Variance-reduction gain: sum_l^2/n_l + sum_r^2/n_r - total^2/n
    const double right_sum = total - left_sum;
    const double gain = left_sum * left_sum / static_cast<double>(nl) +
                        right_sum * right_sum / static_cast<double>(nr) -
                        total * total / static_cast<double>(n);
    if (gain > best.gain) {
      best.gain = gain;
      best.threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      best.left_count = nl;
    }
  }
  return best;
}

/// Candidate features for one node: all, or a random subset for forests.
std::vector<std::size_t> candidate_features(std::size_t d, int max_features,
                                            Rng& rng) {
  if (max_features > 0 && static_cast<std::size_t>(max_features) < d) {
    return rng.sample_without_replacement(
        d, static_cast<std::size_t>(max_features));
  }
  std::vector<std::size_t> features(d);
  for (std::size_t f = 0; f < d; ++f) features[f] = f;
  return features;
}

}  // namespace

int DecisionTreeRegressor::build(BuildContext& ctx,
                                 std::vector<std::size_t>& rows, int depth) {
  const auto& x = *ctx.x;
  const auto& y = *ctx.y;
  const std::size_t n = rows.size();

  double sum = 0.0;
  for (auto r : rows) sum += y[r];
  const double mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(TreeNode{.value = mean});

  if (depth >= ctx.effective_max_depth ||
      n < static_cast<std::size_t>(options_.min_samples_split)) {
    return node_index;
  }

  const std::vector<std::size_t> features =
      candidate_features(x.cols(), ctx.max_features, ctx.rng);

  SplitCandidate best;
  std::size_t best_feature = 0;
  for (auto f : features) {
    const auto cand = best_split_on_feature(x, y, rows, f,
                                            options_.min_samples_leaf,
                                            ctx.sorted);
    if (cand.gain > best.gain) {
      best = cand;
      best_feature = f;
    }
  }
  if (best.gain <= 1e-12) return node_index;  // pure or unsplittable node
  ctx.importance[best_feature] += best.gain;

  // Partition rows in place.
  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  left_rows.reserve(best.left_count);
  right_rows.reserve(n - best.left_count);
  for (auto r : rows) {
    (x(r, best_feature) <= best.threshold ? left_rows : right_rows)
        .push_back(r);
  }
  // Ties at the threshold can defeat the sorted-scan counts; guard anyway.
  if (left_rows.empty() || right_rows.empty()) return node_index;

  rows.clear();
  rows.shrink_to_fit();

  const int left = build(ctx, left_rows, depth + 1);
  const int right = build(ctx, right_rows, depth + 1);
  nodes_[node_index].feature = static_cast<int>(best_feature);
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

// ---------------------------------------------------------------------------
// Histogram split finding
// ---------------------------------------------------------------------------

/// Per-node gradient histogram: (count, target-sum) per bin, flattened over
/// all features via FeatureBins offsets.
struct DecisionTreeRegressor::Histogram {
  std::vector<double> sum;
  std::vector<std::uint32_t> count;

  explicit Histogram(int total_bins)
      : sum(static_cast<std::size_t>(total_bins), 0.0),
        count(static_cast<std::size_t>(total_bins), 0) {}

  void accumulate(const FeatureBins& bins, const std::vector<double>& y,
                  const std::vector<std::size_t>& rows) {
    const std::size_t d = bins.cols();
    for (auto r : rows) {
      const std::uint16_t* codes = bins.row_codes(r);
      const double target = y[r];
      for (std::size_t f = 0; f < d; ++f) {
        const auto idx =
            static_cast<std::size_t>(bins.offset(f)) + codes[f];
        sum[idx] += target;
        ++count[idx];
      }
    }
  }

  /// In-place subtraction (sibling-histogram trick): this -= other.
  void subtract(const Histogram& other) {
    for (std::size_t i = 0; i < sum.size(); ++i) {
      sum[i] -= other.sum[i];
      count[i] -= other.count[i];
    }
  }
};

struct DecisionTreeRegressor::HistContext {
  const FeatureBins* bins = nullptr;
  const std::vector<double>* y = nullptr;
  std::vector<double> importance;
  int effective_max_depth = 64;
  int max_features = 0;
  Rng rng{1};
};

int DecisionTreeRegressor::build_hist(HistContext& ctx,
                                      std::vector<std::size_t>& rows,
                                      Histogram& hist, int depth) {
  const FeatureBins& bins = *ctx.bins;
  const auto& y = *ctx.y;
  const std::size_t n = rows.size();

  double sum = 0.0;
  for (auto r : rows) sum += y[r];
  const double mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(TreeNode{.value = mean});

  if (depth >= ctx.effective_max_depth ||
      n < static_cast<std::size_t>(options_.min_samples_split)) {
    return node_index;
  }

  const std::vector<std::size_t> features =
      candidate_features(bins.cols(), ctx.max_features, ctx.rng);

  // Scan each candidate feature's bins left to right; a boundary after bin
  // b corresponds to the exact split x <= upper_edge(f, b).
  double best_gain = -1.0;
  std::size_t best_feature = 0;
  int best_bin = -1;
  const auto min_leaf = static_cast<std::size_t>(options_.min_samples_leaf);
  for (auto f : features) {
    const int off = bins.offset(f);
    const int bc = bins.bin_count(f);
    double left_sum = 0.0;
    std::size_t left_count = 0;
    for (int b = 0; b + 1 < bc; ++b) {
      const auto idx = static_cast<std::size_t>(off + b);
      left_sum += hist.sum[idx];
      left_count += hist.count[idx];
      if (hist.count[idx] == 0) continue;  // same partition as previous bin
      const std::size_t nl = left_count;
      const std::size_t nr = n - left_count;
      if (nl < min_leaf || nr < min_leaf || nr == 0) continue;
      const double right_sum = sum - left_sum;
      const double gain = left_sum * left_sum / static_cast<double>(nl) +
                          right_sum * right_sum / static_cast<double>(nr) -
                          sum * sum / static_cast<double>(n);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_bin = b;
      }
    }
  }
  if (best_bin < 0 || best_gain <= 1e-12) return node_index;
  ctx.importance[best_feature] += best_gain;
  const double threshold = bins.upper_edge(best_feature, best_bin);

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (auto r : rows) {
    (bins.code(r, best_feature) <= best_bin ? left_rows : right_rows)
        .push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return node_index;

  rows.clear();
  rows.shrink_to_fit();

  // Sibling-subtraction trick: scan only the smaller child's rows; the
  // larger child's histogram is parent - smaller, reusing parent storage.
  const bool left_is_small = left_rows.size() <= right_rows.size();
  Histogram small(bins.total_bins());
  small.accumulate(bins, y, left_is_small ? left_rows : right_rows);
  hist.subtract(small);
  Histogram& left_hist = left_is_small ? small : hist;
  Histogram& right_hist = left_is_small ? hist : small;

  const int left = build_hist(ctx, left_rows, left_hist, depth + 1);
  const int right = build_hist(ctx, right_rows, right_hist, depth + 1);
  nodes_[node_index].feature = static_cast<int>(best_feature);
  nodes_[node_index].threshold = threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

void DecisionTreeRegressor::fit_binned(const FeatureBins& bins,
                                       const std::vector<double>& y,
                                       const std::vector<std::size_t>& rows) {
  CCPRED_CHECK_MSG(bins.rows() == y.size(), "bins/y row mismatch");
  CCPRED_CHECK_MSG(!rows.empty(), "cannot fit tree on zero rows");
  for (auto r : rows) {
    CCPRED_CHECK_MSG(r < bins.rows(), "row index out of range");
  }

  nodes_.clear();
  HistContext ctx;
  ctx.bins = &bins;
  ctx.y = &y;
  ctx.importance.assign(bins.cols(), 0.0);
  ctx.effective_max_depth =
      options_.max_depth == 0 ? 64 : options_.max_depth;
  ctx.max_features = options_.max_features;
  ctx.rng = Rng(options_.seed);

  std::vector<std::size_t> root_rows = rows;
  Histogram root(bins.total_bins());
  root.accumulate(bins, y, root_rows);
  build_hist(ctx, root_rows, root, 0);
  importance_ = std::move(ctx.importance);
}

// ---------------------------------------------------------------------------
// Shared entry points
// ---------------------------------------------------------------------------

void DecisionTreeRegressor::fit(const linalg::Matrix& x,
                                const std::vector<double>& y) {
  std::vector<std::size_t> rows(x.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  fit_rows(x, y, rows);
}

void DecisionTreeRegressor::fit_rows(const linalg::Matrix& x,
                                     const std::vector<double>& y,
                                     const std::vector<std::size_t>& rows) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(!rows.empty(), "cannot fit tree on zero rows");
  for (auto r : rows) CCPRED_CHECK_MSG(r < x.rows(), "row index out of range");

  if (options_.split_mode == SplitMode::kHistogram) {
    // Standalone histogram fit: bin here. Ensembles bin once and call
    // fit_binned directly.
    const FeatureBins bins = FeatureBins::build(x, options_.max_bins);
    fit_binned(bins, y, rows);
    return;
  }

  nodes_.clear();
  BuildContext ctx;
  ctx.x = &x;
  ctx.y = &y;
  ctx.importance.assign(x.cols(), 0.0);
  ctx.effective_max_depth =
      options_.max_depth == 0 ? 64 : options_.max_depth;
  ctx.max_features = options_.max_features;
  ctx.rng = Rng(options_.seed);

  std::vector<std::size_t> root_rows = rows;
  build(ctx, root_rows, 0);
  importance_ = std::move(ctx.importance);
}

std::vector<double> DecisionTreeRegressor::feature_importances() const {
  CCPRED_CHECK_MSG(is_fitted(), "feature_importances before fit");
  std::vector<double> out = importance_;
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0) {
    for (auto& v : out) v /= total;
  }
  return out;
}

DecisionTreeRegressor DecisionTreeRegressor::from_parts(
    TreeOptions options, std::vector<TreeNode> nodes,
    std::vector<double> raw_importance) {
  CCPRED_CHECK_MSG(!nodes.empty(), "a fitted tree needs at least one node");
  for (const auto& node : nodes) {
    if (node.is_leaf()) continue;
    CCPRED_CHECK_MSG(node.left >= 0 &&
                         node.left < static_cast<int>(nodes.size()) &&
                         node.right >= 0 &&
                         node.right < static_cast<int>(nodes.size()),
                     "tree child index out of range");
  }
  DecisionTreeRegressor tree(options);
  tree.nodes_ = std::move(nodes);
  tree.importance_ = std::move(raw_importance);
  return tree;
}

double DecisionTreeRegressor::predict_row(const double* row) const {
  int i = 0;
  while (!nodes_[i].is_leaf()) {
    i = row[nodes_[i].feature] <= nodes_[i].threshold ? nodes_[i].left
                                                      : nodes_[i].right;
  }
  return nodes_[i].value;
}

std::vector<double> DecisionTreeRegressor::predict(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(is_fitted(), "DecisionTreeRegressor::predict before fit");
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict_row(x.row_ptr(i));
  return out;
}

std::unique_ptr<Regressor> DecisionTreeRegressor::clone() const {
  return std::make_unique<DecisionTreeRegressor>(options_);
}

const std::string& DecisionTreeRegressor::name() const {
  static const std::string n = "DT";
  return n;
}

int DecisionTreeRegressor::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the flattened representation.
  std::vector<std::pair<int, int>> stack = {{0, 0}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (!nodes_[i].is_leaf()) {
      stack.push_back({nodes_[i].left, d + 1});
      stack.push_back({nodes_[i].right, d + 1});
    }
  }
  return max_depth;
}

void DecisionTreeRegressor::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    const int iv = static_cast<int>(std::lround(value));
    if (key == "max_depth") {
      CCPRED_CHECK_MSG(iv >= 0, "max_depth must be >= 0");
      options_.max_depth = iv;
    } else if (key == "min_samples_split") {
      CCPRED_CHECK_MSG(iv >= 2, "min_samples_split must be >= 2");
      options_.min_samples_split = iv;
    } else if (key == "min_samples_leaf") {
      CCPRED_CHECK_MSG(iv >= 1, "min_samples_leaf must be >= 1");
      options_.min_samples_leaf = iv;
    } else if (key == "max_features") {
      CCPRED_CHECK_MSG(iv >= 0, "max_features must be >= 0");
      options_.max_features = iv;
    } else if (key == "split_mode") {
      CCPRED_CHECK_MSG(iv == 0 || iv == 1,
                       "split_mode must be 0 (exact) or 1 (histogram)");
      options_.split_mode = iv == 0 ? SplitMode::kExact : SplitMode::kHistogram;
    } else if (key == "max_bins") {
      CCPRED_CHECK_MSG(iv >= 2 && iv <= 60000,
                       "max_bins must be in [2, 60000]");
      options_.max_bins = iv;
    } else {
      throw Error("DecisionTreeRegressor: unknown parameter '" + key + "'");
    }
  }
}

}  // namespace ccpred::ml
