#pragma once

/// \file bayes_search.hpp
/// Bayesian hyper-parameter optimization (the paper's scikit-optimize
/// counterpart): a Gaussian-process surrogate over the unit-encoded
/// parameter space, acquiring the next candidate by expected improvement.

#include "ccpred/core/grid_search.hpp"

namespace ccpred::ml {

/// Extra knobs for Bayesian search.
struct BayesSearchOptions {
  SearchOptions base;
  int n_initial = 4;      ///< random warm-up evaluations
  int n_candidates = 256; ///< EI is maximized over this many random probes
};

/// Runs `n_iter` total evaluations (including the warm-up) and returns the
/// best candidate found.
SearchResult bayes_search(const Regressor& prototype, const ParamSpace& space,
                          int n_iter, const linalg::Matrix& x,
                          const std::vector<double>& y,
                          const BayesSearchOptions& options = {});

/// Expected improvement of a Gaussian posterior (mean mu, std sigma) over
/// the incumbent best value (maximization). Exposed for testing.
double expected_improvement(double mu, double sigma, double best);

}  // namespace ccpred::ml
