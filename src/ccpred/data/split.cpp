#include "ccpred/data/split.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "ccpred/common/error.hpp"

namespace ccpred::data {

SplitIndices stratified_split(const Dataset& dataset, std::size_t test_count,
                              Rng& rng) {
  const std::size_t n = dataset.size();
  CCPRED_CHECK_MSG(test_count > 0 && test_count < n,
                   "test_count " << test_count << " out of range for " << n
                                 << " rows");
  const auto groups = dataset.group_by_problem();

  // Largest-remainder allocation of the test quota across strata.
  struct Stratum {
    std::vector<std::size_t> rows;
    std::size_t quota = 0;
    double remainder = 0.0;
  };
  std::vector<Stratum> strata;
  const double frac = static_cast<double>(test_count) / static_cast<double>(n);
  std::size_t assigned = 0;
  for (const auto& [key, rows] : groups) {
    Stratum s;
    s.rows = rows;
    const double exact = frac * static_cast<double>(rows.size());
    s.quota = static_cast<std::size_t>(exact);
    s.remainder = exact - std::floor(exact);
    assigned += s.quota;
    strata.push_back(std::move(s));
  }
  std::vector<std::size_t> order(strata.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return strata[a].remainder > strata[b].remainder;
  });
  for (std::size_t k = 0; assigned < test_count; ++k) {
    auto& s = strata[order[k % order.size()]];
    if (s.quota < s.rows.size()) {
      ++s.quota;
      ++assigned;
    }
  }

  SplitIndices out;
  for (auto& s : strata) {
    const auto picked = rng.sample_without_replacement(s.rows.size(), s.quota);
    std::vector<bool> is_test(s.rows.size(), false);
    for (auto i : picked) is_test[i] = true;
    for (std::size_t i = 0; i < s.rows.size(); ++i) {
      (is_test[i] ? out.test : out.train).push_back(s.rows[i]);
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  CCPRED_CHECK(out.test.size() == test_count);
  CCPRED_CHECK(out.train.size() + out.test.size() == n);
  return out;
}

SplitIndices stratified_split_fraction(const Dataset& dataset,
                                       double test_fraction, Rng& rng) {
  CCPRED_CHECK_MSG(test_fraction > 0.0 && test_fraction < 1.0,
                   "test fraction must be in (0,1)");
  const auto count = static_cast<std::size_t>(
      std::lround(test_fraction * static_cast<double>(dataset.size())));
  return stratified_split(dataset, std::max<std::size_t>(1, count), rng);
}

void ensure_config_coverage(const Dataset& dataset, SplitIndices& split) {
  // Key a configuration by its full (O, V, nodes, tile) tuple.
  using Key = std::tuple<int, int, int, int>;
  auto key_of = [&](std::size_t row) {
    const auto& c = dataset.config(row);
    return Key{c.o, c.v, c.nodes, c.tile};
  };
  std::map<Key, std::size_t> train_count;
  for (auto r : split.train) ++train_count[key_of(r)];

  for (std::size_t ti = 0; ti < split.test.size(); ++ti) {
    const std::size_t test_row = split.test[ti];
    const Key k = key_of(test_row);
    if (train_count[k] > 0) continue;
    // Uncovered configuration: swap this test row with a same-problem train
    // row whose configuration has at least two train copies.
    const auto& cfg = dataset.config(test_row);
    for (std::size_t gi = 0; gi < split.train.size(); ++gi) {
      const std::size_t train_row = split.train[gi];
      const auto& tc = dataset.config(train_row);
      if (tc.o != cfg.o || tc.v != cfg.v) continue;
      const Key tk = key_of(train_row);
      if (train_count[tk] < 2) continue;
      std::swap(split.train[gi], split.test[ti]);
      --train_count[tk];
      ++train_count[k];
      break;
    }
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
}

TrainTest apply_split(const Dataset& dataset, const SplitIndices& split) {
  return TrainTest{.train = dataset.select(split.train),
                   .test = dataset.select(split.test)};
}

}  // namespace ccpred::data
