/// Reproduces paper Table 2: training and prediction times of the
/// production Gradient Boosting configuration (750 estimators, depth 10)
/// on both machines' datasets, via google-benchmark.
///
/// Paper: Aurora train 1.18 s +- 20.5 ms, predict 20 ms +- 802 us;
///        Frontier train 1.19 s +- 1.95 ms, predict 22.3 ms +- 848 us.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ccpred/core/model_zoo.hpp"

namespace {

using ccpred::bench::PaperData;

const PaperData& shared_data(const std::string& machine) {
  static const PaperData aurora = ccpred::bench::load_paper_data("aurora");
  static const PaperData frontier = ccpred::bench::load_paper_data("frontier");
  return machine == "aurora" ? aurora : frontier;
}

void BM_GBTrain(benchmark::State& state, const std::string& machine) {
  const auto& data = shared_data(machine);
  const auto x = data.split.train.features();
  const auto& y = data.split.train.targets();
  for (auto _ : state) {
    auto gb = ccpred::ml::make_paper_gb();
    gb->fit(x, y);
    benchmark::DoNotOptimize(gb);
  }
}

void BM_GBPredict(benchmark::State& state, const std::string& machine) {
  const auto& data = shared_data(machine);
  auto gb = ccpred::ml::make_paper_gb();
  gb->fit(data.split.train.features(), data.split.train.targets());
  const auto x_test = data.split.test.features();
  for (auto _ : state) {
    auto pred = gb->predict(x_test);
    benchmark::DoNotOptimize(pred);
  }
}

BENCHMARK_CAPTURE(BM_GBTrain, aurora, std::string("aurora"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GBTrain, frontier, std::string("frontier"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GBPredict, aurora, std::string("aurora"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GBPredict, frontier, std::string("frontier"))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
