// Tests for cross-validation and the three hyper-parameter search
// strategies (grid, randomized, Bayesian).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ccpred/core/bayes_search.hpp"
#include "ccpred/core/cross_validation.hpp"
#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/grid_search.hpp"
#include "ccpred/core/kernel_ridge.hpp"
#include "ccpred/core/param_space.hpp"
#include "ccpred/core/random_search.hpp"
#include "test_util.hpp"

namespace ccpred::ml {
namespace {

using test::make_nonlinear;

// ---------- kfold ----------

TEST(KFoldTest, PartitionsAllRowsOnce) {
  Rng rng(1);
  const auto folds = kfold_indices(103, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    for (auto i : fold) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 103u);
}

TEST(KFoldTest, BalancedSizes) {
  Rng rng(2);
  const auto folds = kfold_indices(10, 3, rng);
  std::vector<std::size_t> sizes;
  for (const auto& f : folds) sizes.push_back(f.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3, 4}));
}

TEST(KFoldTest, InvalidArgsThrow) {
  Rng rng(3);
  EXPECT_THROW(kfold_indices(10, 1, rng), Error);
  EXPECT_THROW(kfold_indices(3, 4, rng), Error);
}

TEST(ScoringTest, ValueOrientation) {
  Scores s{.r2 = 0.9, .mae = 2.0, .mape = 0.1, .rmse = 3.0};
  EXPECT_DOUBLE_EQ(scoring_value(s, Scoring::kR2), 0.9);
  EXPECT_DOUBLE_EQ(scoring_value(s, Scoring::kNegMae), -2.0);
  EXPECT_DOUBLE_EQ(scoring_value(s, Scoring::kNegMape), -0.1);
}

TEST(CrossValidateTest, ReasonableScoresOnLearnableData) {
  const auto s = make_nonlinear(300, 0.05);
  const DecisionTreeRegressor tree(TreeOptions{.max_depth = 8});
  Rng rng(4);
  const auto cv = cross_validate(tree, s.x, s.y, 5, rng);
  EXPECT_EQ(cv.fold_scores.size(), 5u);
  EXPECT_GT(cv.mean.r2, 0.5);
  EXPECT_GT(cv.mean.mae, 0.0);
}

TEST(CrossValidateTest, MeanIsAverageOfFolds) {
  const auto s = make_nonlinear(150, 0.1);
  const DecisionTreeRegressor tree(TreeOptions{.max_depth = 5});
  Rng rng(5);
  const auto cv = cross_validate(tree, s.x, s.y, 3, rng);
  double sum = 0.0;
  for (const auto& f : cv.fold_scores) sum += f.r2;
  EXPECT_NEAR(cv.mean.r2, sum / 3.0, 1e-12);
}

// ---------- param spaces ----------

TEST(ParamSpaceTest, GridExpansionIsCartesian) {
  const ParamGrid grid = {{"a", {1, 2}}, {"b", {10, 20, 30}}};
  const auto combos = expand_grid(grid);
  EXPECT_EQ(combos.size(), 6u);
  EXPECT_EQ(grid_size(grid), 6u);
  std::set<std::pair<double, double>> seen;
  for (const auto& c : combos) seen.insert({c.at("a"), c.at("b")});
  EXPECT_EQ(seen.size(), 6u);
}

TEST(ParamSpaceTest, EmptyGridValueThrows) {
  EXPECT_THROW(expand_grid({{"a", {}}}), Error);
}

TEST(ParamSpaceTest, SampleRespectsBoundsAndInteger) {
  const ParamSpace space = {
      {"lin", {.lo = -1.0, .hi = 1.0}},
      {"log", {.lo = 1e-3, .hi = 1e3, .log_scale = true}},
      {"int", {.lo = 2.0, .hi = 9.0, .integer = true}},
  };
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const auto p = sample_params(space, rng);
    EXPECT_GE(p.at("lin"), -1.0);
    EXPECT_LE(p.at("lin"), 1.0);
    EXPECT_GE(p.at("log"), 1e-3);
    EXPECT_LE(p.at("log"), 1e3);
    EXPECT_DOUBLE_EQ(p.at("int"), std::round(p.at("int")));
  }
}

TEST(ParamSpaceTest, LogSamplingCoversDecades) {
  const ParamSpace space = {{"g", {.lo = 1e-3, .hi = 1e3, .log_scale = true}}};
  Rng rng(7);
  int low = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (sample_params(space, rng).at("g") < 1.0) ++low;
  }
  // Log-uniform: half the draws below the geometric midpoint (1.0).
  EXPECT_NEAR(static_cast<double>(low) / n, 0.5, 0.05);
}

TEST(ParamSpaceTest, EncodeDecodeRoundTrip) {
  const ParamSpace space = {
      {"a", {.lo = 0.0, .hi = 10.0}},
      {"b", {.lo = 1e-2, .hi = 1e2, .log_scale = true}},
  };
  const ParamMap p = {{"a", 2.5}, {"b", 3.0}};
  const auto decoded = decode_params(space, encode_params(space, p));
  EXPECT_NEAR(decoded.at("a"), 2.5, 1e-9);
  EXPECT_NEAR(decoded.at("b"), 3.0, 1e-6);
}

TEST(ParamSpaceTest, SpaceFromGridInfersScales) {
  const ParamGrid grid = {{"alpha", {1e-4, 1e-2, 1.0}},
                          {"depth", {4, 8, 12}}};
  const auto space = space_from_grid(grid);
  EXPECT_TRUE(space.at("alpha").log_scale);
  EXPECT_FALSE(space.at("alpha").integer);
  EXPECT_TRUE(space.at("depth").integer);
  EXPECT_FALSE(space.at("depth").log_scale);
  EXPECT_DOUBLE_EQ(space.at("depth").lo, 4.0);
  EXPECT_DOUBLE_EQ(space.at("depth").hi, 12.0);
}

// ---------- searches ----------

class SearchFixture : public ::testing::Test {
 protected:
  SearchFixture() : data_(make_nonlinear(250, 0.05, 9)) {}
  test::Synthetic data_;
  DecisionTreeRegressor prototype_{TreeOptions{.max_depth = 4}};
  // Depth is the decisive knob on this target: depth 1 badly underfits.
  ParamGrid grid_ = {{"max_depth", {1, 4, 8}}, {"min_samples_leaf", {1, 4}}};
};

TEST_F(SearchFixture, GridSearchEvaluatesEveryCombo) {
  const auto result = grid_search(prototype_, grid_, data_.x, data_.y);
  EXPECT_EQ(result.trials.size(), 6u);
  EXPECT_TRUE(result.best_model && result.best_model->is_fitted());
  EXPECT_GT(result.elapsed_s, 0.0);
}

TEST_F(SearchFixture, GridSearchPrefersDeeperTree) {
  const auto result = grid_search(prototype_, grid_, data_.x, data_.y);
  EXPECT_GT(result.best_params.at("max_depth"), 1.0);
  // Best value beats the worst trial.
  double worst = 1e300;
  for (const auto& t : result.trials) worst = std::min(worst, t.value);
  EXPECT_GT(result.best_value(ml::Scoring::kR2), worst);
}

TEST_F(SearchFixture, GridSearchDeterministic) {
  const auto a = grid_search(prototype_, grid_, data_.x, data_.y);
  const auto b = grid_search(prototype_, grid_, data_.x, data_.y);
  EXPECT_EQ(a.best_params, b.best_params);
  EXPECT_DOUBLE_EQ(a.best_cv_scores.r2, b.best_cv_scores.r2);
}

TEST_F(SearchFixture, NoRefitSkipsModel) {
  SearchOptions opt;
  opt.refit = false;
  const auto result = grid_search(prototype_, grid_, data_.x, data_.y, opt);
  EXPECT_EQ(result.best_model, nullptr);
}

TEST_F(SearchFixture, RandomSearchStaysInSpaceAndFindsGoodDepth) {
  const auto space = space_from_grid(grid_);
  const auto result =
      random_search(prototype_, space, 12, data_.x, data_.y);
  EXPECT_EQ(result.trials.size(), 12u);
  for (const auto& t : result.trials) {
    EXPECT_GE(t.params.at("max_depth"), 1.0);
    EXPECT_LE(t.params.at("max_depth"), 8.0);
  }
  EXPECT_GT(result.best_params.at("max_depth"), 1.0);
  EXPECT_THROW(random_search(prototype_, space, 0, data_.x, data_.y), Error);
}

TEST_F(SearchFixture, BayesSearchImprovesOnWarmup) {
  const auto space = space_from_grid(grid_);
  BayesSearchOptions opt;
  opt.n_initial = 3;
  const auto result =
      bayes_search(prototype_, space, 10, data_.x, data_.y, opt);
  EXPECT_EQ(result.trials.size(), 10u);
  // The incumbent after all iterations is at least as good as the best
  // warm-up point.
  double warmup_best = -1e300;
  for (int i = 0; i < 3; ++i) {
    warmup_best = std::max(warmup_best, result.trials[i].value);
  }
  EXPECT_GE(result.best_value(ml::Scoring::kR2), warmup_best);
}

TEST(ExpectedImprovementTest, Properties) {
  // Zero sigma: EI is the positive part of the mean gap.
  EXPECT_DOUBLE_EQ(expected_improvement(2.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_improvement(0.5, 0.0, 1.0), 0.0);
  // EI is non-negative and grows with sigma at fixed mean.
  EXPECT_GE(expected_improvement(0.0, 0.5, 1.0), 0.0);
  EXPECT_LT(expected_improvement(0.0, 0.1, 1.0),
            expected_improvement(0.0, 2.0, 1.0));
  // Above-incumbent mean dominates a deep-below one at equal sigma.
  EXPECT_GT(expected_improvement(1.5, 0.3, 1.0),
            expected_improvement(-3.0, 0.3, 1.0));
}

}  // namespace
}  // namespace ccpred::ml
