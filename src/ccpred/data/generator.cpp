#include "ccpred/data/generator.hpp"

#include <algorithm>
#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/common/rng.hpp"
#include "ccpred/sim/contraction.hpp"

namespace ccpred::data {
namespace {

/// Work-based cap on the node counts worth sweeping for a problem: jobs
/// saturate once per-GPU work gets small, so the campaign stops there.
int max_useful_nodes(const sim::CcsdSimulator& simulator, const Problem& p) {
  const double flops = sim::ccsd_iteration_flops(p.o, p.v);
  // ~2e13 flops of CCSD work per node keeps iterations in the tens of
  // seconds; sweeping past flops / 1e14 per node is wasted allocation.
  const double cap = flops / 1.0e14;
  const int lo = 90;
  const int hi = 900;
  const int min_feasible = simulator.min_nodes(p.o, p.v);
  return std::max(min_feasible,
                  std::clamp(static_cast<int>(cap), lo, hi));
}

/// Work-based floor: below this node count an iteration would run for tens
/// of minutes, which no measurement campaign pays for.
int min_useful_nodes(const sim::CcsdSimulator& simulator, const Problem& p) {
  const double flops = sim::ccsd_iteration_flops(p.o, p.v);
  const int floor_nodes = std::max(5, static_cast<int>(flops / 1.2e16));
  return std::max(simulator.min_nodes(p.o, p.v), floor_nodes);
}

}  // namespace

std::vector<int> node_grid(const sim::CcsdSimulator& simulator,
                           const Problem& p) {
  const int n_max = max_useful_nodes(simulator, p);
  const int n_min = min_useful_nodes(simulator, p);
  std::vector<int> grid;
  for (int n : simulator.machine().node_menu()) {
    if (n >= n_min && n <= n_max) grid.push_back(n);
  }
  CCPRED_CHECK_MSG(!grid.empty(), "empty node grid for O=" << p.o
                                      << " V=" << p.v);
  return grid;
}

namespace {

/// Evenly-spaced subset of `values` with at most `k` entries, always
/// keeping the first and last.
std::vector<int> evenly_spaced(const std::vector<int>& values, std::size_t k) {
  if (values.size() <= k) return values;
  std::vector<int> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t idx = i * (values.size() - 1) / (k - 1);
    out.push_back(values[idx]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Dataset generate_dataset(const sim::CcsdSimulator& simulator,
                         const std::vector<Problem>& problems,
                         const GeneratorOptions& options) {
  CCPRED_CHECK_MSG(!problems.empty(), "need at least one problem");
  Rng rng(options.seed);

  // Per problem, the campaign sweeps a modest grid of node counts and tile
  // sizes (batch queues are expensive) and measures configurations
  // repeatedly across the sweep — so the same (nodes, tile) point appears
  // multiple times with independent run-to-run noise, exactly like a real
  // trace collection.
  std::vector<std::vector<sim::RunConfig>> per_problem(problems.size());
  for (std::size_t pi = 0; pi < problems.size(); ++pi) {
    const auto& p = problems[pi];
    const auto nodes = evenly_spaced(node_grid(simulator, p),
                                     options.max_node_values);
    // Rotate which tiles each problem sweeps so the union covers the full
    // menu while each individual campaign stays small.
    const auto& menu = simulator.machine().tile_menu();
    std::vector<int> tiles;
    const std::size_t k = std::min(options.max_tile_values, menu.size());
    for (std::size_t i = 0; i < k; ++i) {
      tiles.push_back(menu[(pi + i * menu.size() / k) % menu.size()]);
    }
    std::sort(tiles.begin(), tiles.end());
    for (int n : nodes) {
      for (int t : tiles) {
        const sim::RunConfig cfg{.o = p.o, .v = p.v, .nodes = n, .tile = t};
        if (simulator.feasible(cfg)) per_problem[pi].push_back(cfg);
      }
    }
    CCPRED_CHECK_MSG(!per_problem[pi].empty(),
                     "no feasible configurations for O=" << p.o
                         << " V=" << p.v);
  }

  // Rows per problem: equal shares of the target (largest-remainder), or
  // one measurement per configuration when no target is set.
  std::vector<std::size_t> quota(problems.size());
  if (options.target_total == 0) {
    for (std::size_t pi = 0; pi < problems.size(); ++pi) {
      quota[pi] = per_problem[pi].size();
    }
  } else {
    const std::size_t base = options.target_total / problems.size();
    std::size_t rem = options.target_total % problems.size();
    for (std::size_t pi = 0; pi < problems.size(); ++pi) {
      quota[pi] = base + (pi < rem ? 1 : 0);
    }
  }

  // Draw measurements round-robin so repeat counts differ by at most one
  // across a problem's configurations (the balanced campaign protocol).
  Dataset out;
  for (std::size_t pi = 0; pi < problems.size(); ++pi) {
    const auto& configs = per_problem[pi];
    Rng measure_rng = rng.split();
    for (std::size_t k = 0; k < quota[pi]; ++k) {
      const std::size_t ci = k % configs.size();
      out.add(configs[ci], simulator.measured_time(configs[ci], measure_rng));
    }
  }
  return out;
}

Dataset paper_dataset(const sim::CcsdSimulator& simulator,
                      std::uint64_t seed) {
  GeneratorOptions opt;
  opt.seed = seed;
  opt.target_total = paper_total_rows(simulator.machine().name);
  return generate_dataset(simulator, problems_for(simulator.machine().name),
                          opt);
}

std::size_t paper_total_rows(const std::string& machine_name) {
  if (machine_name == "aurora") return 2329;
  if (machine_name == "frontier") return 2454;
  throw Error("unknown machine name: " + machine_name);
}

std::size_t paper_test_rows(const std::string& machine_name) {
  if (machine_name == "aurora") return 583;
  if (machine_name == "frontier") return 614;
  throw Error("unknown machine name: " + machine_name);
}

}  // namespace ccpred::data
