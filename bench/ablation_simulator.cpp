/// Simulator ablation: shows the response-surface structure that makes the
/// regression problem realistic — scaling in nodes (speedup then
/// saturation), the tile-size sweet spot, node-hour monotonicity, sextic
/// growth in problem size, and the cost breakdown by component.

#include <cstdio>

#include "bench_util.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/sim/contraction.hpp"

int main() {
  using namespace ccpred;
  for (const std::string machine : {"aurora", "frontier"}) {
    const auto simulator = bench::make_simulator(machine);
    std::printf("== Simulator ablation (%s) ==\n\n", machine.c_str());

    // 1. Strong scaling in nodes (mid-size problem, fixed tile).
    TextTable scaling({"nodes", "time_s", "node_hours", "speedup"},
                      "Strong scaling, O=134 V=951, tile=90");
    const sim::RunConfig base{.o = 134, .v = 951, .nodes = 10, .tile = 90};
    const double t_base = simulator.iteration_time(base);
    for (int n : {10, 25, 50, 110, 200, 400, 800}) {
      sim::RunConfig cfg = base;
      cfg.nodes = n;
      const double t = simulator.iteration_time(cfg);
      scaling.add_row({TextTable::cell(static_cast<long long>(n)),
                       TextTable::cell(t, 2),
                       TextTable::cell(sim::CcsdSimulator::node_hours(cfg, t), 2),
                       TextTable::cell(t_base * base.nodes / (t * n), 3)});
    }
    scaling.print();
    std::printf("\n");

    // 2. Tile-size sweet spot at two node counts.
    TextTable tiles({"tile", "t @ 50 nodes", "t @ 400 nodes"},
                    "Tile-size response, O=134 V=951");
    for (int t : simulator.machine().tile_menu()) {
      tiles.add_row(
          {TextTable::cell(static_cast<long long>(t)),
           TextTable::cell(simulator.iteration_time({134, 951, 50, t}), 2),
           TextTable::cell(simulator.iteration_time({134, 951, 400, t}), 2)});
    }
    tiles.print();
    std::printf("\n");

    // 3. Sextic growth in problem size at fixed configuration.
    TextTable growth({"O", "V", "flops (x1e15)", "time_s @ 200 nodes"},
                     "Problem-size scaling, tile=90");
    for (const auto& [o, v] : std::vector<std::pair<int, int>>{
             {44, 260}, {85, 698}, {134, 951}, {180, 1070}, {280, 1040}}) {
      growth.add_row(
          {TextTable::cell(static_cast<long long>(o)),
           TextTable::cell(static_cast<long long>(v)),
           TextTable::cell(sim::ccsd_iteration_flops(o, v) / 1e15, 2),
           TextTable::cell(simulator.iteration_time({o, v, 200, 90}), 2)});
    }
    growth.print();
    std::printf("\n");

    // 4. Cost breakdown at a representative configuration.
    const auto b = simulator.breakdown({134, 951, 110, 90});
    std::printf("breakdown O=134 V=951 nodes=110 tile=90: contractions "
                "%.2fs, collectives %.3fs, sync %.2fs, fixed %.2fs, "
                "%lld tasks\n\n",
                b.contraction_s, b.collective_s, b.sync_s, b.fixed_s,
                static_cast<long long>(b.tasks));
  }
  return 0;
}
