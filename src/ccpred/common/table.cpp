#include "ccpred/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "ccpred/common/error.hpp"
#include "ccpred/common/strings.hpp"

namespace ccpred {

TextTable::TextTable(std::vector<std::string> header, std::string title)
    : title_(std::move(title)), header_(std::move(header)) {
  CCPRED_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  CCPRED_CHECK_MSG(row.size() == header_.size(),
                   "row width " << row.size() << " != header width "
                                << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::cell(double v, int prec) {
  return format_double(v, prec);
}

std::string TextTable::cell(long long v) { return std::to_string(v); }

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      out << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  emit(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace ccpred
