#pragma once

/// \file serialize.hpp
/// Text serialization for the tree-family models, so a trained runtime
/// predictor can be shipped to users without shipping the training data:
/// train once per machine, publish the model file, everyone gets instant
/// STQ/BQ answers.
///
/// Format: line-oriented ASCII with full double precision. Versioned
/// header; loaders validate structure and throw ccpred::Error on
/// malformed input.

#include <string>

#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/random_forest.hpp"

namespace ccpred::ml {

/// Serializes a fitted CART tree.
std::string serialize_tree(const DecisionTreeRegressor& tree);

/// Restores a tree from serialize_tree output.
DecisionTreeRegressor deserialize_tree(const std::string& text);

/// Serializes a fitted gradient-boosting model (all stages + the
/// hyper-parameters needed to predict).
std::string serialize_gb(const GradientBoostingRegressor& model);

/// Restores a GB model from serialize_gb output; the result predicts
/// bit-identically to the original.
GradientBoostingRegressor deserialize_gb(const std::string& text);

/// Convenience: write/read a GB model file.
void save_gb(const GradientBoostingRegressor& model, const std::string& path);
GradientBoostingRegressor load_gb(const std::string& path);

/// Serializes a fitted random forest (header "ccpred-rf-v1", then each
/// member tree in serialize_tree body format).
std::string serialize_rf(const RandomForestRegressor& model);

/// Restores a forest from serialize_rf output; the result predicts
/// bit-identically to the original.
RandomForestRegressor deserialize_rf(const std::string& text);

/// Convenience: write/read an RF model file.
void save_rf(const RandomForestRegressor& model, const std::string& path);
RandomForestRegressor load_rf(const std::string& path);

}  // namespace ccpred::ml
