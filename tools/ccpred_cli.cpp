/// ccpred_cli — command-line front end for the library.
///
/// Subcommands:
///   generate --machine aurora|frontier [--rows N] [--seed S] --out FILE
///       Run a simulated trace-collection campaign and write it as CSV
///       (columns O,V,nodes,tilesize,time_s).
///   evaluate --data FILE [--test-frac F] [--seed S]
///       Train the paper's GB model on a CSV campaign and report held-out
///       R^2 / MAE / MAPE plus permutation feature importances.
///   advise --data FILE --machine M --o O --v V [--budget NH]
///       Train on the campaign and answer STQ, BQ and (optionally) the
///       budget-constrained question for a problem size.
///   job --machine M --o O --v V --nodes N --tile T
///       Whole-job estimate (setup + converged CCSD iterations) straight
///       from the simulator.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "ccpred/common/csv.hpp"
#include "ccpred/common/error.hpp"
#include "ccpred/common/strings.hpp"
#include "ccpred/core/importance.hpp"
#include "ccpred/core/metrics.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/split.hpp"
#include "ccpred/guidance/advisor.hpp"
#include "ccpred/sim/solver.hpp"

namespace {

using namespace ccpred;

/// Minimal --key value argument parser.
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; i += 2) {
    CCPRED_CHECK_MSG(std::strncmp(argv[i], "--", 2) == 0,
                     "expected --flag, got '" << argv[i] << "'");
    CCPRED_CHECK_MSG(i + 1 < argc,
                     "flag '" << argv[i] << "' is missing a value");
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

std::string need(const std::map<std::string, std::string>& flags,
                 const std::string& key) {
  const auto it = flags.find(key);
  CCPRED_CHECK_MSG(it != flags.end(), "missing required flag --" << key);
  return it->second;
}

std::string get_or(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

sim::CcsdSimulator make_simulator(const std::string& machine) {
  if (machine == "aurora") return sim::CcsdSimulator(sim::MachineModel::aurora());
  if (machine == "frontier") {
    return sim::CcsdSimulator(sim::MachineModel::frontier());
  }
  throw Error("unknown machine: " + machine + " (use aurora|frontier)");
}

int cmd_generate(const std::map<std::string, std::string>& flags) {
  const auto simulator = make_simulator(need(flags, "machine"));
  data::GeneratorOptions opt;
  opt.seed = static_cast<std::uint64_t>(
      parse_int(get_or(flags, "seed", "2025")));
  opt.target_total = static_cast<std::size_t>(
      parse_int(get_or(flags, "rows", "0")));
  if (opt.target_total == 0) {
    opt.target_total = data::paper_total_rows(simulator.machine().name);
  }
  const auto dataset = data::generate_dataset(
      simulator, data::problems_for(simulator.machine().name), opt);
  const std::string out = need(flags, "out");
  write_csv(dataset.to_csv(), out);
  std::printf("wrote %zu rows (%zu problem sizes) to %s\n", dataset.size(),
              dataset.problems().size(), out.c_str());
  return 0;
}

/// Loads a campaign CSV, splits it, trains the paper's GB model.
struct TrainedModel {
  data::TrainTest split;
  std::unique_ptr<ml::Regressor> model;
};

TrainedModel train_from_csv(const std::string& path, double test_frac,
                            std::uint64_t seed) {
  const auto dataset = data::Dataset::from_csv(read_csv(path));
  Rng rng(seed);
  auto split = data::stratified_split_fraction(dataset, test_frac, rng);
  data::ensure_config_coverage(dataset, split);
  TrainedModel out{.split = data::apply_split(dataset, split),
                   .model = ml::make_paper_gb()};
  out.model->fit(out.split.train.features(), out.split.train.targets());
  return out;
}

int cmd_evaluate(const std::map<std::string, std::string>& flags) {
  const double frac = parse_double(get_or(flags, "test-frac", "0.25"));
  const auto seed =
      static_cast<std::uint64_t>(parse_int(get_or(flags, "seed", "1")));
  const auto trained = train_from_csv(need(flags, "data"), frac, seed);
  const auto scores =
      ml::score_all(trained.split.test.targets(),
                    trained.model->predict(trained.split.test.features()));
  std::printf("train %zu rows, test %zu rows\n", trained.split.train.size(),
              trained.split.test.size());
  std::printf("GB(750x10): R^2=%.4f MAE=%.2fs MAPE=%.4f RMSE=%.2fs\n",
              scores.r2, scores.mae, scores.mape, scores.rmse);
  const auto importance = ml::permutation_importance(
      *trained.model, trained.split.test.features(),
      trained.split.test.targets());
  std::printf("permutation importance (R^2 drop):");
  for (std::size_t c = 0; c < importance.size(); ++c) {
    std::printf(" %s=%.3f", data::Dataset::feature_names()[c].c_str(),
                importance[c]);
  }
  std::printf("\n");
  return 0;
}

int cmd_advise(const std::map<std::string, std::string>& flags) {
  const auto simulator = make_simulator(need(flags, "machine"));
  const auto trained = train_from_csv(need(flags, "data"), 0.25, 1);
  const int o = static_cast<int>(parse_int(need(flags, "o")));
  const int v = static_cast<int>(parse_int(need(flags, "v")));
  const guide::Advisor advisor(*trained.model, simulator);

  const auto stq = advisor.shortest_time(o, v);
  const auto bq = advisor.cheapest_run(o, v);
  std::printf("O=%d V=%d on %s\n", o, v, simulator.machine().name.c_str());
  std::printf("  fastest : %4d nodes, tile %3d  (pred %.1fs, %.2f NH)\n",
              stq.config.nodes, stq.config.tile, stq.predicted_time_s,
              stq.predicted_node_hours);
  std::printf("  cheapest: %4d nodes, tile %3d  (pred %.1fs, %.2f NH)\n",
              bq.config.nodes, bq.config.tile, bq.predicted_time_s,
              bq.predicted_node_hours);
  if (flags.count("budget")) {
    const double budget = parse_double(flags.at("budget"));
    const auto rec = advisor.fastest_within_budget(o, v, budget);
    std::printf("  within %.2f NH: %4d nodes, tile %3d  (pred %.1fs, "
                "%.2f NH)\n",
                budget, rec.config.nodes, rec.config.tile,
                rec.predicted_time_s, rec.predicted_node_hours);
  }
  const auto front = guide::pareto_front(stq.sweep);
  std::printf("  pareto frontier: %zu of %zu swept configurations\n",
              front.size(), stq.sweep.size());
  return 0;
}

int cmd_job(const std::map<std::string, std::string>& flags) {
  const auto simulator = make_simulator(need(flags, "machine"));
  const sim::RunConfig cfg{
      .o = static_cast<int>(parse_int(need(flags, "o"))),
      .v = static_cast<int>(parse_int(need(flags, "v"))),
      .nodes = static_cast<int>(parse_int(need(flags, "nodes"))),
      .tile = static_cast<int>(parse_int(need(flags, "tile")))};
  const auto job = sim::estimate_job(simulator, cfg);
  std::printf(
      "CCSD job O=%d V=%d on %d nodes (tile %d):\n"
      "  setup %.1fs + %d iterations x %.1fs = %.1fs total (%.2f "
      "node-hours)\n"
      "  per-node memory: %.1f GB\n",
      cfg.o, cfg.v, cfg.nodes, cfg.tile, job.setup_s, job.iterations,
      job.iteration_s, job.total_s, job.node_hours,
      simulator.memory_per_node_gb(cfg));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ccpred_cli <generate|evaluate|advise|job> "
               "[--flag value ...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const auto flags = parse_flags(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(flags);
    if (cmd == "evaluate") return cmd_evaluate(flags);
    if (cmd == "advise") return cmd_advise(flags);
    if (cmd == "job") return cmd_job(flags);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
