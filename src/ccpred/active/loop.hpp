#pragma once

/// \file loop.hpp
/// The active-learning driver of Algorithms 1 and 2: start from a small
/// random labeled set, iterate fit -> evaluate -> query -> label, and
/// record the learning curve. With a goal (STQ/BQ), each round also
/// evaluates the true-loss quality of the predicted optimal configurations
/// on the held-out test set.

#include <optional>
#include <string>
#include <vector>

#include "ccpred/active/strategy.hpp"
#include "ccpred/core/metrics.hpp"
#include "ccpred/data/dataset.hpp"
#include "ccpred/guidance/optimal.hpp"

namespace ccpred::al {

/// Loop configuration; defaults follow Algorithm 1/2 (n_initial 50,
/// query_size 50; US runs 20 rounds, QC runs 10).
struct ActiveLearningOptions {
  std::size_t n_initial = 50;
  std::size_t query_size = 50;
  int n_queries = 20;
  std::uint64_t seed = 11;
  /// When set, each round also answers the goal question on the test set
  /// and records the true-loss scores (§3.4).
  std::optional<guide::Objective> goal;
  /// When true and the model supports it (GP), rounds after the first
  /// absorb the newly labeled rows via Regressor::update() — extending the
  /// cached distance matrix and Cholesky factor in O(n^2 q) with
  /// hyper-parameters unchanged — instead of refitting from scratch.
  bool incremental_refit = false;
  /// With incremental_refit, a full refit (including hyper-parameter
  /// re-optimization and scaler updates) still runs every refit_cadence
  /// rounds; <= 0 means only round 0 fits from scratch.
  int refit_cadence = 5;
};

/// One round of the learning curve.
struct RoundRecord {
  std::size_t labeled_count = 0;       ///< labels after this round's fit
  ml::Scores train_scores;             ///< model vs the full train set
  std::optional<ml::Scores> goal_losses;  ///< STQ/BQ true losses (test set)
};

/// Full learning curve for one (strategy, model) pair.
struct ActiveLearningResult {
  std::string strategy;
  std::string model;
  std::vector<RoundRecord> rounds;
};

/// Runs the loop: `prototype` is cloned and refit each round on the
/// labeled rows of `train`; `strategy` picks the next queries. The test
/// set is only used for goal evaluation, never for querying.
ActiveLearningResult run_active_learning(const data::Dataset& train,
                                         const data::Dataset& test,
                                         const ml::Regressor& prototype,
                                         QueryStrategy& strategy,
                                         const ActiveLearningOptions& options);

}  // namespace ccpred::al
