#include "ccpred/linalg/blas.hpp"

#include <algorithm>

#include "ccpred/common/thread_pool.hpp"

namespace ccpred::linalg {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  CCPRED_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  CCPRED_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

std::vector<double> gemv(const Matrix& a, const std::vector<double>& x) {
  CCPRED_CHECK(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row_ptr(r);
    double s = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) s += ar[c] * x[c];
    y[r] = s;
  }
  return y;
}

std::vector<double> gemv_transposed(const Matrix& a,
                                    const std::vector<double>& x) {
  CCPRED_CHECK(a.rows() == x.size());
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row_ptr(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += xr * ar[c];
  }
  return y;
}

namespace {

// i-k-j loop order: the inner loop streams contiguously through B and C,
// which vectorizes well; blocking keeps the working set in L1/L2.
constexpr std::size_t kBlock = 64;

void gemm_block(const Matrix& a, const Matrix& b, Matrix& c, std::size_t i0,
                std::size_t i1) {
  const std::size_t n = b.cols();
  const std::size_t k_dim = a.cols();
  for (std::size_t kk = 0; kk < k_dim; kk += kBlock) {
    const std::size_t k1 = std::min(k_dim, kk + kBlock);
    for (std::size_t i = i0; i < i1; ++i) {
      const double* ai = a.row_ptr(i);
      double* ci = c.row_ptr(i);
      for (std::size_t k = kk; k < k1; ++k) {
        const double aik = ai[k];
        if (aik == 0.0) continue;
        const double* bk = b.row_ptr(k);
        for (std::size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
      }
    }
  }
}

}  // namespace

Matrix gemm(const Matrix& a, const Matrix& b) {
  CCPRED_CHECK_MSG(a.cols() == b.rows(), "gemm dimension mismatch: "
                                             << a.rows() << "x" << a.cols()
                                             << " * " << b.rows() << "x"
                                             << b.cols());
  Matrix c(a.rows(), b.cols());
  const std::size_t m = a.rows();
  // Parallelize over row stripes when the product is large enough that the
  // fork/join overhead is irrelevant.
  if (m * b.cols() * a.cols() > 1u << 21) {
    const std::size_t stripes = (m + kBlock - 1) / kBlock;
    parallel_for(0, stripes, [&](std::size_t s) {
      const std::size_t i0 = s * kBlock;
      gemm_block(a, b, c, i0, std::min(m, i0 + kBlock));
    });
  } else {
    gemm_block(a, b, c, 0, m);
  }
  return c;
}

namespace {

/// Accumulates the upper triangle of A[r0:r1)^T A[r0:r1) into `c`.
void syrk_at_a_rows(const Matrix& a, Matrix& c, std::size_t r0,
                    std::size_t r1) {
  const std::size_t n = a.cols();
  for (std::size_t r = r0; r < r1; ++r) {
    const double* ar = a.row_ptr(r);
    for (std::size_t i = 0; i < n; ++i) {
      const double ari = ar[i];
      if (ari == 0.0) continue;
      double* ci = c.row_ptr(i);
      for (std::size_t j = i; j < n; ++j) ci[j] += ari * ar[j];
    }
  }
}

}  // namespace

Matrix syrk_at_a(const Matrix& a) {
  const std::size_t n = a.cols();
  const std::size_t m = a.rows();
  Matrix c(n, n);
  // Row stripes with per-stripe accumulators, reduced serially in stripe
  // order afterwards — deterministic for any worker count. Small products
  // stay on the single-threaded path to skip the fork/join and the
  // accumulator allocations.
  constexpr std::size_t kStripe = 256;
  const std::size_t stripes = (m + kStripe - 1) / kStripe;
  if (stripes <= 1 || m * n * n < (1u << 18)) {
    syrk_at_a_rows(a, c, 0, m);
  } else {
    std::vector<Matrix> partial(stripes, Matrix(n, n));
    parallel_for(0, stripes, [&](std::size_t s) {
      const std::size_t r0 = s * kStripe;
      syrk_at_a_rows(a, partial[s], r0, std::min(m, r0 + kStripe));
    });
    for (const auto& p : partial) c += p;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  }
  return c;
}

Matrix syrk_a_at(const Matrix& a) {
  const std::size_t m = a.rows();
  Matrix c(m, m);
  parallel_for(0, m, [&](std::size_t i) {
    const double* ai = a.row_ptr(i);
    for (std::size_t j = i; j < m; ++j) {
      const double* aj = a.row_ptr(j);
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += ai[k] * aj[k];
      c(i, j) = s;
    }
  });
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  }
  return c;
}

}  // namespace ccpred::linalg
