#pragma once

/// \file model_zoo.hpp
/// The paper's evaluated model family (§3.1) behind one factory: all nine
/// regressors with their default configurations and per-model
/// hyper-parameter search spaces used by Figures 1-2.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ccpred/core/param_space.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::ml {

/// One catalogued model: factory + default search grid.
struct ZooEntry {
  std::string key;          ///< paper abbreviation ("PR", "KR", ...)
  std::string description;  ///< one-line human description
  std::function<std::unique_ptr<Regressor>()> make;
  ParamGrid grid;           ///< grid-search candidates (Figures 1-2)
};

/// All nine models in paper order: PR, KR, DT, RF, GB, AB, GP, BR, SVR.
const std::vector<ZooEntry>& model_zoo();

/// Lookup by key; throws ccpred::Error for unknown keys.
const ZooEntry& zoo_entry(const std::string& key);

/// Fresh default instance of a catalogued model.
std::unique_ptr<Regressor> make_model(const std::string& key);

/// The paper's production configuration (§4.2): gradient boosting with 750
/// estimators, max depth 10, all other hyper-parameters default.
std::unique_ptr<Regressor> make_paper_gb();

}  // namespace ccpred::ml
