#pragma once

/// \file uncertainty_sampling.hpp
/// Uncertainty sampling (US, Algorithm 1): query the unlabeled experiments
/// with the largest posterior predictive standard deviation — requires a
/// model that reports uncertainty (the paper pairs US with a Gaussian
/// process).

#include "ccpred/active/strategy.hpp"

namespace ccpred::al {

/// argsort(-std)[:query_size] over the unlabeled pool.
class UncertaintySampling : public QueryStrategy {
 public:
  const std::string& name() const override;

  /// `fitted_model` must be an UncertaintyRegressor (GP or Bayesian
  /// ridge); throws ccpred::Error otherwise.
  std::vector<std::size_t> select(const Pool& pool,
                                  const ml::Regressor& fitted_model,
                                  std::size_t query_size, Rng& rng) override;
};

}  // namespace ccpred::al
