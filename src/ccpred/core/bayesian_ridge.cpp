#include "ccpred/core/bayesian_ridge.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/linalg/blas.hpp"
#include "ccpred/linalg/cholesky.hpp"

namespace ccpred::ml {

BayesianRidgeRegression::BayesianRidgeRegression() = default;

void BayesianRidgeRegression::fit(const linalg::Matrix& x,
                                  const std::vector<double>& y) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot fit on empty data");
  const linalg::Matrix z = scaler_.fit_transform(x);
  const auto yz = y_scaler_.fit_transform(y);
  const std::size_t n = z.rows();
  const std::size_t d = z.cols();

  const linalg::Matrix gram = linalg::syrk_at_a(z);           // Z^T Z
  const auto zty = linalg::gemv_transposed(z, yz);             // Z^T y

  alpha_ = 1.0;   // noise precision
  lambda_ = 1.0;  // weight precision
  coef_.assign(d, 0.0);

  double prev_lambda = lambda_;
  double prev_alpha = alpha_;
  for (int it = 0; it < max_iter_; ++it) {
    // Posterior: Sigma = (alpha Z^T Z + lambda I)^{-1}, mu = alpha Sigma Z^T y.
    linalg::Matrix a = gram;
    a *= alpha_;
    a.add_diagonal(lambda_);
    const linalg::Cholesky chol(a);
    posterior_cov_ = chol.inverse();
    coef_ = linalg::gemv(posterior_cov_, zty);
    for (auto& c : coef_) c *= alpha_;

    // Effective number of parameters.
    double trace_sg = 0.0;  // trace(Sigma * Z^T Z)
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        trace_sg += posterior_cov_(i, j) * gram(j, i);
      }
    }
    const double gamma_eff = alpha_ * trace_sg;

    double sse = 0.0;
    const auto pred = linalg::gemv(z, coef_);
    for (std::size_t i = 0; i < n; ++i) {
      sse += (yz[i] - pred[i]) * (yz[i] - pred[i]);
    }
    double coef_sq = 0.0;
    for (double c : coef_) coef_sq += c * c;

    lambda_ = (gamma_eff + 2.0 * lambda_1_) / (coef_sq + 2.0 * lambda_2_);
    alpha_ = (static_cast<double>(n) - gamma_eff + 2.0 * alpha_1_) /
             (sse + 2.0 * alpha_2_);

    if (std::abs(lambda_ - prev_lambda) < tol_ &&
        std::abs(alpha_ - prev_alpha) < tol_) {
      break;
    }
    prev_lambda = lambda_;
    prev_alpha = alpha_;
  }
  fitted_ = true;
}

std::vector<double> BayesianRidgeRegression::predict(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(fitted_, "BayesianRidgeRegression::predict before fit");
  const linalg::Matrix z = scaler_.transform(x);
  auto out = linalg::gemv(z, coef_);
  for (auto& v : out) v = y_scaler_.inverse_one(v);
  return out;
}

void BayesianRidgeRegression::predict_with_std(const linalg::Matrix& x,
                                               std::vector<double>& mean,
                                               std::vector<double>& std) const {
  CCPRED_CHECK_MSG(fitted_, "BayesianRidge predict_with_std before fit");
  const linalg::Matrix z = scaler_.transform(x);
  mean = linalg::gemv(z, coef_);
  std.assign(z.rows(), 0.0);
  for (std::size_t i = 0; i < z.rows(); ++i) {
    const auto zi = z.row(i);
    const auto sz = linalg::gemv(posterior_cov_, zi);
    const double var = 1.0 / alpha_ + linalg::dot(zi, sz);
    std[i] = std::sqrt(std::max(0.0, var)) * y_scaler_.stddev();
    mean[i] = y_scaler_.inverse_one(mean[i]);
  }
}

std::unique_ptr<Regressor> BayesianRidgeRegression::clone() const {
  auto copy = std::make_unique<BayesianRidgeRegression>();
  copy->max_iter_ = max_iter_;
  copy->tol_ = tol_;
  copy->alpha_1_ = alpha_1_;
  copy->alpha_2_ = alpha_2_;
  copy->lambda_1_ = lambda_1_;
  copy->lambda_2_ = lambda_2_;
  return copy;
}

const std::string& BayesianRidgeRegression::name() const {
  static const std::string n = "BR";
  return n;
}

void BayesianRidgeRegression::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "max_iter") {
      max_iter_ = static_cast<int>(std::lround(value));
      CCPRED_CHECK_MSG(max_iter_ > 0, "max_iter must be > 0");
    } else if (key == "tol") {
      CCPRED_CHECK_MSG(value > 0.0, "tol must be > 0");
      tol_ = value;
    } else if (key == "alpha_1") {
      alpha_1_ = value;
    } else if (key == "alpha_2") {
      alpha_2_ = value;
    } else if (key == "lambda_1") {
      lambda_1_ = value;
    } else if (key == "lambda_2") {
      lambda_2_ = value;
    } else {
      throw Error("BayesianRidgeRegression: unknown parameter '" + key + "'");
    }
  }
}

}  // namespace ccpred::ml
