#pragma once

/// \file protocol.hpp
/// The serving subsystem's wire format: one flat JSON object per line, for
/// both requests and responses. Flat means string / number / boolean values
/// only — no nesting — which keeps the parser ~100 lines, the protocol
/// greppable, and a session scriptable with a shell here-doc.
///
/// Requests:
///   {"op":"stq","machine":"aurora","o":134,"v":951}
///   {"op":"bq","machine":"frontier","o":99,"v":718,"id":"q7"}
///   {"op":"budget","machine":"aurora","o":134,"v":951,"max_node_hours":8.0}
///   {"op":"job","machine":"aurora","o":134,"v":951,"nodes":110,"tile":90}
///   {"op":"stats"}
///   {"op":"report","machine":"aurora","o":134,"v":951,"nodes":110,
///    "tile":90,"wall_time_s":123.4}
///
/// `report` feeds a measured run back into the online learning loop. Repeat
/// measurements of the same configuration batch as a comma-separated list:
/// "wall_times":"123.4,130.1" (at most 64 entries; mutually exclusive with
/// wall_time_s). Every wall time must be a finite positive number — NaN,
/// Inf and non-positive values are rejected at the parse boundary.
///
/// Any request may carry "deadline_ms": the server answers
/// {"ok":false,"code":"deadline",...} if it cannot finish in time (the
/// underlying sweep still completes and warms the cache).
///
/// Responses echo "op" (and "id" when given) and carry either the answer
/// fields or {"ok":false,"code":"...","error":"..."} — `code` is a stable
/// machine-readable failure class ("deadline", "overloaded",
/// "bad_request", "internal") while `error` stays human-readable. An ok
/// answer computed from a last-good model after a failed hot reload
/// additionally carries "stale":true.

#include <map>
#include <string>
#include <vector>

#include "ccpred/serve/stats.hpp"

namespace ccpred::serve {

/// Request kinds understood by the server.
enum class Op {
  kStq,     ///< shortest-time question
  kBq,      ///< budget question (min node-hours)
  kBudget,  ///< fastest within a node-hour budget
  kJob,     ///< whole-job estimate straight from the simulator
  kStats,   ///< server statistics snapshot
  kReport,  ///< measured-run feedback for the online learning loop
};

/// Largest batch of wall times one report request may carry.
inline constexpr std::size_t kMaxReportBatch = 64;

/// Canonical wire name of an op ("stq", "bq", ...).
const char* op_name(Op op);

/// One parsed request. `machine` / `model` may be empty, meaning "use the
/// server's defaults".
struct Request {
  Op op = Op::kStats;
  std::string id;       ///< optional client tag, echoed verbatim
  std::string machine;  ///< "aurora" | "frontier" | "" (server default)
  std::string model;    ///< "gb" | "rf" | "" (server default)
  int o = 0;
  int v = 0;
  int nodes = 0;              ///< job / report ops only
  int tile = 0;               ///< job / report ops only
  double max_node_hours = 0.0;  ///< budget op only
  int deadline_ms = 0;          ///< per-request deadline; 0 = none
  /// report op only: validated finite positive measurements (>= 1 entry).
  std::vector<double> wall_times;
};

/// One response; which optional block is populated depends on the op.
struct Response {
  bool ok = false;
  std::string op;     ///< echoed op name
  std::string id;     ///< echoed request id (may be empty)
  std::string error;  ///< set when !ok (human-readable)
  std::string code;   ///< set when !ok (machine-readable failure class)
  bool stale = false;  ///< answer came from a last-good model (degraded)

  // Recommendation block (stq / bq / budget).
  bool has_recommendation = false;
  int nodes = 0;
  int tile = 0;
  double time_s = 0.0;
  double node_hours = 0.0;
  std::uint64_t model_version = 0;
  std::size_t sweep_size = 0;
  bool cache_hit = false;

  // Job block.
  bool has_job = false;
  int iterations = 0;
  double setup_s = 0.0;
  double iteration_s = 0.0;
  double total_s = 0.0;

  // Report block (online feedback ingestion; model_version above names the
  // model that scored the reported runs).
  bool has_report = false;
  std::size_t accepted = 0;    ///< measurements stored
  std::size_t duplicates = 0;  ///< byte-exact repeats dropped
  std::size_t buffered = 0;    ///< stream buffer size afterwards
  double rolling_mape = 0.0;   ///< drift window MAPE afterwards
  bool drifting = false;       ///< drift detector tripped
  bool refit_scheduled = false;  ///< this report triggered a refit

  // Stats block.
  bool has_stats = false;
  ServerStats stats;
};

/// Parses one flat JSON object into key -> raw value text (strings are
/// unescaped, numbers/booleans kept as written). Throws ccpred::Error on
/// malformed input, nesting, or duplicate keys.
std::map<std::string, std::string> parse_record(const std::string& line);

/// Parses and validates a request line. Throws ccpred::Error with a
/// user-facing message on unknown ops, missing fields, or bad numbers.
Request parse_request(const std::string& line);

/// Semantic validation shared by every ingress path (line-JSON parsing and
/// the binary wire decoder): report dimensions and wall times, deadline
/// sign. Throws ccpred::Error with the same messages parse_request raises,
/// so a request is accepted or rejected identically on both protocols.
void validate_request(const Request& request);

/// Renders a request as one flat JSON line (no trailing newline) that
/// parse_request accepts back as an equivalent request. Doubles are
/// rendered with enough digits (%.17g) to round-trip exactly; the fleet
/// router and the bench load generator are built on this.
std::string format_request(const Request& request);

/// Renders a response as one flat JSON line (no trailing newline).
std::string format_response(const Response& response);

/// Convenience: an ok=false response echoing whatever could be salvaged.
/// `code` defaults to "bad_request", the class of every parse-boundary
/// failure; dispatch-time failures pass their own class.
Response error_response(const std::string& message, const std::string& op = "",
                        const std::string& id = "",
                        const std::string& code = "bad_request");

}  // namespace ccpred::serve
