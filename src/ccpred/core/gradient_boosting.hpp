#pragma once

/// \file gradient_boosting.hpp
/// Gradient-boosted regression trees (paper §3.1 "GB") with squared loss:
/// each stage fits a CART tree to the current residuals and is shrunk by a
/// learning rate. The paper's winning model — its tuned configuration
/// (750 estimators, depth 10, defaults otherwise) is the library default.

#include <memory>
#include <string>
#include <vector>

#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::ml {

/// Parameters: "n_estimators", "learning_rate", "max_depth",
/// "min_samples_split", "min_samples_leaf", "subsample" (stochastic GB).
class GradientBoostingRegressor : public Regressor {
 public:
  explicit GradientBoostingRegressor(int n_estimators = 750,
                                     double learning_rate = 0.1,
                                     TreeOptions tree_options = {},
                                     double subsample = 1.0,
                                     std::uint64_t seed = 42);

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const linalg::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return fitted_; }

  std::size_t stage_count() const { return trees_.size(); }
  double learning_rate() const { return learning_rate_; }

  /// Mean impurity-based feature importances over the boosting stages,
  /// normalized to sum to 1.
  std::vector<double> feature_importances() const;

  /// Prediction truncated to the first `stages` boosting stages — used by
  /// staged-training diagnostics and the hyper-parameter ablation bench.
  std::vector<double> predict_staged(const linalg::Matrix& x,
                                     std::size_t stages) const;

  /// Serialization access: the fitted stages and base prediction.
  const std::vector<DecisionTreeRegressor>& stages() const { return trees_; }
  double base_prediction() const { return base_prediction_; }

  /// Reconstructs a fitted model from its parts (serialization loader).
  static GradientBoostingRegressor from_parts(
      double learning_rate, double base_prediction,
      std::vector<DecisionTreeRegressor> stages);

 private:
  int n_estimators_;
  double learning_rate_;
  TreeOptions tree_options_;
  double subsample_;
  std::uint64_t seed_;

  bool fitted_ = false;
  double base_prediction_ = 0.0;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace ccpred::ml
