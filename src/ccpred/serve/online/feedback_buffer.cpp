#include "ccpred/serve/online/feedback_buffer.hpp"

#include <cmath>
#include <cstring>

#include "ccpred/common/error.hpp"

namespace ccpred::serve::online {

std::size_t FeedbackBuffer::DedupKeyHash::operator()(const DedupKey& k) const {
  std::size_t h = std::hash<int>()(k.o);
  h = h * 1000003u ^ std::hash<int>()(k.v);
  h = h * 1000003u ^ std::hash<int>()(k.nodes);
  h = h * 1000003u ^ std::hash<int>()(k.tile);
  h = h * 1000003u ^ std::hash<std::uint64_t>()(k.wall_bits);
  return h;
}

FeedbackBuffer::DedupKey FeedbackBuffer::key_of(const MeasuredRun& run) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof run.wall_time_s);
  std::memcpy(&bits, &run.wall_time_s, sizeof bits);
  return DedupKey{run.o, run.v, run.nodes, run.tile, bits};
}

FeedbackBuffer::FeedbackBuffer(std::size_t capacity) : capacity_(capacity) {
  CCPRED_CHECK_MSG(capacity > 0, "FeedbackBuffer capacity must be > 0");
}

AddResult FeedbackBuffer::add(MeasuredRun run) {
  if (!std::isfinite(run.wall_time_s) || run.wall_time_s <= 0.0) {
    return AddResult::kRejected;
  }
  const DedupKey key = key_of(run);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!keys_.insert(key).second) return AddResult::kDuplicate;
  if (runs_.size() == capacity_) {
    keys_.erase(key_of(runs_.front()));
    runs_.pop_front();
  }
  run.seq = next_seq_++;
  runs_.push_back(run);
  return AddResult::kAccepted;
}

std::vector<MeasuredRun> FeedbackBuffer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {runs_.begin(), runs_.end()};
}

std::vector<MeasuredRun> FeedbackBuffer::recent(std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t take = n < runs_.size() ? n : runs_.size();
  return {runs_.end() - static_cast<std::ptrdiff_t>(take), runs_.end()};
}

std::size_t FeedbackBuffer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return runs_.size();
}

std::uint64_t FeedbackBuffer::accepted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

}  // namespace ccpred::serve::online
