#include "ccpred/data/problems.hpp"

#include <string>

#include "ccpred/common/error.hpp"

namespace ccpred::data {

const std::vector<Problem>& aurora_problems() {
  // Paper Table 3 (one row per problem size).
  static const std::vector<Problem> list = {
      {44, 260},   {81, 835},   {85, 698},   {99, 718},   {99, 1021},
      {116, 575},  {116, 840},  {116, 1184}, {134, 523},  {134, 951},
      {134, 1200}, {146, 278},  {146, 591},  {146, 1096}, {146, 1568},
      {180, 720},  {180, 1070}, {196, 764},  {204, 969},  {235, 1007},
      {280, 1040}, {345, 791},
  };
  return list;
}

const std::vector<Problem>& frontier_problems() {
  // Paper Table 4.
  static const std::vector<Problem> list = {
      {49, 663},   {81, 835},  {85, 698},   {99, 718},  {99, 1021},
      {116, 575},  {116, 840}, {116, 1184}, {134, 523}, {134, 951},
      {134, 1200}, {146, 591}, {146, 1096}, {180, 720}, {180, 1070},
      {196, 764},  {204, 969}, {235, 1007}, {280, 1040}, {345, 791},
  };
  return list;
}

const std::vector<Problem>& problems_for(const std::string& machine_name) {
  if (machine_name == "aurora") return aurora_problems();
  if (machine_name == "frontier") return frontier_problems();
  throw Error("unknown machine name: " + machine_name);
}

}  // namespace ccpred::data
