#include "ccpred/serve/server.hpp"

#include <utility>

#include "ccpred/common/error.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/sim/solver.hpp"

namespace ccpred::serve {

Server::Server(ModelRegistry& registry, ServeOptions options)
    : registry_(registry),
      options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards),
      pool_(options_.threads) {}

const sim::CcsdSimulator& Server::simulator(const std::string& machine) {
  const std::lock_guard<std::mutex> lock(simulators_mutex_);
  auto it = simulators_.find(machine);
  if (it == simulators_.end()) {
    it = simulators_.emplace(machine, simulator_for(machine)).first;
  }
  return it->second;
}

SweepPtr Server::sweep_for(const std::string& machine, const std::string& kind,
                           int o, int v, std::uint64_t* model_version,
                           bool* cache_hit) {
  const ModelHandle handle = registry_.get(machine, kind);
  *model_version = handle.version;
  const SweepKey key{machine, kind, handle.version, o, v};
  if (SweepPtr cached = cache_.get(key)) {
    *cache_hit = true;
    return cached;
  }
  *cache_hit = false;

  // Single-flight: first requester becomes the leader and computes; everyone
  // else blocks on the leader's future instead of re-running the sweep.
  std::promise<SweepPtr> promise;
  std::shared_future<SweepPtr> future;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      leader = true;
      future = promise.get_future().share();
      inflight_[key] = future;
    } else {
      future = it->second;
    }
  }
  if (!leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    return future.get();
  }
  try {
    const guide::Advisor advisor(*handle.model, simulator(machine));
    auto sweep = std::make_shared<const guide::Recommendation>(
        advisor.recommend(o, v, guide::Objective::kShortestTime));
    sweeps_computed_.fetch_add(1, std::memory_order_relaxed);
    cache_.put(key, sweep);
    {
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(key);
    }
    promise.set_value(sweep);
    return sweep;
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

Response Server::dispatch(const Request& req) {
  Response r;
  r.op = op_name(req.op);
  r.id = req.id;

  if (req.op == Op::kStats) {
    r.ok = true;
    r.has_stats = true;
    r.stats = stats();
    return r;
  }

  const std::string machine =
      req.machine.empty() ? options_.default_machine : req.machine;

  if (req.op == Op::kJob) {
    const sim::RunConfig cfg{
        .o = req.o, .v = req.v, .nodes = req.nodes, .tile = req.tile};
    const auto job = sim::estimate_job(simulator(machine), cfg);
    r.ok = true;
    r.has_job = true;
    r.iterations = job.iterations;
    r.setup_s = job.setup_s;
    r.iteration_s = job.iteration_s;
    r.total_s = job.total_s;
    r.node_hours = job.node_hours;
    return r;
  }

  // STQ / BQ / budget: one cached sweep answers all three.
  const std::string kind =
      req.model.empty() ? options_.default_model : req.model;
  std::uint64_t version = 0;
  bool cache_hit = false;
  const SweepPtr sweep =
      sweep_for(machine, kind, req.o, req.v, &version, &cache_hit);

  guide::Recommendation rec;
  switch (req.op) {
    case Op::kStq:
      rec = *sweep;  // the cached sweep IS the shortest-time answer
      break;
    case Op::kBq:
      rec = guide::Advisor::from_sweep(sweep->sweep,
                                       guide::Objective::kNodeHours);
      break;
    case Op::kBudget:
      rec = guide::Advisor::fastest_within_budget(*sweep, req.max_node_hours);
      break;
    default:
      throw Error("unhandled op");  // unreachable
  }
  r.ok = true;
  r.has_recommendation = true;
  r.nodes = rec.config.nodes;
  r.tile = rec.config.tile;
  r.time_s = rec.predicted_time_s;
  r.node_hours = rec.predicted_node_hours;
  r.model_version = version;
  r.sweep_size = sweep->sweep.size();
  r.cache_hit = cache_hit;
  return r;
}

Response Server::handle(const Request& req) {
  const Stopwatch timer;
  requests_.fetch_add(1, std::memory_order_relaxed);
  Response r;
  try {
    r = dispatch(req);
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    r = error_response(e.what(), op_name(req.op), req.id);
  }
  latency_.record(timer.elapsed_s());
  return r;
}

std::future<Response> Server::submit(Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  pool_.submit([this, promise, request = std::move(request)]() {
    promise->set_value(handle(request));  // handle() never throws
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
  });
  return future;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.sweeps_computed = sweeps_computed_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  const CacheCounters cc = cache_.counters();
  s.cache_hits = cc.hits;
  s.cache_misses = cc.misses;
  s.cache_evictions = cc.evictions;
  s.cache_hit_rate = cc.hit_rate();
  s.cache_size = cache_.size();
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.models_loaded = registry_.loads();
  s.models_trained = registry_.trainings();
  s.latency_p50_ms = latency_.quantile(0.50) * 1e3;
  s.latency_p95_ms = latency_.quantile(0.95) * 1e3;
  s.latency_mean_ms = latency_.mean() * 1e3;
  return s;
}

}  // namespace ccpred::serve
