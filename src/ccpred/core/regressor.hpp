#pragma once

/// \file regressor.hpp
/// The common interface of all ccpred regression models — the C++
/// counterpart of the scikit-learn estimator protocol the paper relies on.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ccpred/common/error.hpp"
#include "ccpred/linalg/matrix.hpp"

namespace ccpred::ml {

/// Hyper-parameter assignment. Numeric-valued (integers are stored as
/// doubles and rounded by the consuming model), which keeps grid / random /
/// Bayesian search uniform across models.
using ParamMap = std::map<std::string, double>;

/// Abstract regression model: fit on (X, y), predict on X'.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on `x` (n x d) and targets `y` (length n). May be called again
  /// to re-train from scratch.
  virtual void fit(const linalg::Matrix& x, const std::vector<double>& y) = 0;

  /// Predicts targets for each row of `x`. Requires fit() first.
  virtual std::vector<double> predict(const linalg::Matrix& x) const = 0;

  /// Fresh unfitted copy with identical hyper-parameters.
  virtual std::unique_ptr<Regressor> clone() const = 0;

  /// Short model identifier ("GB", "KR", ...).
  virtual const std::string& name() const = 0;

  /// Applies hyper-parameters by key; unknown keys throw ccpred::Error so
  /// search-space typos fail loudly.
  virtual void set_params(const ParamMap& params) = 0;

  /// True after a successful fit().
  virtual bool is_fitted() const = 0;

  /// True when the model can absorb new rows incrementally via update()
  /// instead of refitting from scratch — the active-learning loop uses this
  /// to reuse factorizations between rounds (currently the GP).
  virtual bool supports_incremental_update() const { return false; }

  /// Incrementally extends a fitted model with newly labeled rows. Only
  /// valid when supports_incremental_update() is true; the default throws.
  virtual void update(const linalg::Matrix& /*x_new*/,
                      const std::vector<double>& /*y_new*/) {
    throw Error(name() + ": incremental update not supported");
  }

  /// Convenience: prediction for a single feature row.
  double predict_one(const std::vector<double>& row) const {
    linalg::Matrix x(1, row.size());
    for (std::size_t c = 0; c < row.size(); ++c) x(0, c) = row[c];
    return predict(x).front();
  }
};

/// A regressor that also reports predictive uncertainty — needed by the
/// uncertainty-sampling active-learning strategy (Algorithm 1).
class UncertaintyRegressor : public Regressor {
 public:
  /// Predictive mean and standard deviation for each row of `x`.
  virtual void predict_with_std(const linalg::Matrix& x,
                                std::vector<double>& mean,
                                std::vector<double>& std) const = 0;
};

}  // namespace ccpred::ml
