/// Cross-machine transfer ablation: the paper's question (iii) — "what if
/// a user does not have much historical data for the target application
/// and supercomputer?" — motivates active learning. This bench quantifies
/// the alternative the question implies: how badly does a model trained on
/// machine A mispredict machine B, and how much does a small B sample fix?
///
/// Arms evaluated on the Frontier test split:
///   A-only   : GB trained on the full Aurora campaign
///   B-small  : GB trained on a small Frontier sample (200 rows)
///   A+B-small: GB trained on Aurora plus the small Frontier sample

#include <cstdio>

#include "bench_util.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/core/metrics.hpp"
#include "ccpred/core/model_zoo.hpp"

int main() {
  using namespace ccpred;
  const auto aurora = bench::load_paper_data("aurora");
  const auto frontier = bench::load_paper_data("frontier");

  // A small Frontier sample: the first `k` train rows (round-robin order
  // covers every problem's configurations evenly).
  const std::size_t k = bench::fast_mode() ? 80 : 200;
  std::vector<std::size_t> head(std::min(k, frontier.split.train.size()));
  for (std::size_t i = 0; i < head.size(); ++i) head[i] = i;
  const auto b_small = frontier.split.train.select(head);

  // Union of the Aurora campaign and the small Frontier sample.
  data::Dataset joint;
  for (std::size_t i = 0; i < aurora.split.train.size(); ++i) {
    joint.add(aurora.split.train.config(i), aurora.split.train.target(i));
  }
  for (std::size_t i = 0; i < b_small.size(); ++i) {
    joint.add(b_small.config(i), b_small.target(i));
  }

  struct Arm {
    const char* label;
    const data::Dataset* train;
  };
  const Arm arms[] = {
      {"A-only (aurora campaign)", &aurora.split.train},
      {"B-small (200 frontier rows)", &b_small},
      {"A + B-small", &joint},
      {"B-full (frontier campaign)", &frontier.split.train},
  };

  TextTable table({"training data", "rows", "R2", "MAE", "MAPE"},
                  "Cross-machine transfer, evaluated on the Frontier test "
                  "split");
  for (const auto& arm : arms) {
    auto gb = ml::make_paper_gb();
    gb->fit(arm.train->features(), arm.train->targets());
    const auto scores = ml::score_all(
        frontier.split.test.targets(),
        gb->predict(frontier.split.test.features()));
    table.add_row({arm.label, std::to_string(arm.train->size()),
                   TextTable::cell(scores.r2, 3),
                   TextTable::cell(scores.mae, 1),
                   TextTable::cell(scores.mape, 3)});
  }
  table.print();
  std::printf(
      "\nread: cross-machine transfer degrades markedly and a small target "
      "sample alone is insufficient; combining the source campaign with "
      "the small target sample closes part of the gap, but only a full "
      "target campaign — or active learning on the target machine, the "
      "paper's answer to question (iii) — restores full accuracy.\n");
  return 0;
}
