#include "ccpred/guidance/report.hpp"

#include "ccpred/common/strings.hpp"

namespace ccpred::guide {

std::string paren_cell(double true_value, double pred_value, bool match,
                       int precision) {
  std::string s = format_double(true_value, precision);
  if (!match) s += "(" + format_double(pred_value, precision) + ")";
  return s;
}

std::string paren_cell(int true_value, int pred_value, bool match) {
  std::string s = std::to_string(true_value);
  if (!match) s += "(" + std::to_string(pred_value) + ")";
  return s;
}

std::size_t mismatch_count(const std::vector<ProblemOutcome>& outcomes) {
  std::size_t n = 0;
  for (const auto& po : outcomes) {
    if (!po.config_match) ++n;
  }
  return n;
}

TextTable format_stq_table(const std::vector<ProblemOutcome>& outcomes,
                           const std::string& title) {
  TextTable table({"O", "V", "Nodes", "Tile size", "Runtime (s)"}, title);
  for (const auto& po : outcomes) {
    table.add_row({
        std::to_string(po.o),
        std::to_string(po.v),
        paren_cell(po.truth.config.nodes, po.predicted.config.nodes,
                   po.config_match),
        paren_cell(po.truth.config.tile, po.predicted.config.tile,
                   po.config_match),
        paren_cell(po.true_time, po.realized_time, po.config_match, 2),
    });
  }
  return table;
}

TextTable format_bq_table(const std::vector<ProblemOutcome>& outcomes,
                          const std::string& title) {
  TextTable table({"O", "V", "Nodes", "Tile size", "Runtime (s)",
                   "Node Hours"},
                  title);
  for (const auto& po : outcomes) {
    table.add_row({
        std::to_string(po.o),
        std::to_string(po.v),
        paren_cell(po.truth.config.nodes, po.predicted.config.nodes,
                   po.config_match),
        paren_cell(po.truth.config.tile, po.predicted.config.tile,
                   po.config_match),
        paren_cell(po.true_time, po.realized_time, po.config_match, 2),
        paren_cell(po.true_value, po.realized_value, po.config_match, 2),
    });
  }
  return table;
}

}  // namespace ccpred::guide
