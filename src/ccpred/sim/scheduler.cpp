#include "ccpred/sim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "ccpred/common/error.hpp"

namespace ccpred::sim {

double lpt_makespan(std::vector<TaskGroup> groups, int workers) {
  CCPRED_CHECK_MSG(workers > 0, "need at least one worker");
  std::erase_if(groups, [](const TaskGroup& g) { return g.count == 0; });
  if (groups.empty()) return 0.0;
  for (const auto& g : groups) {
    CCPRED_CHECK_MSG(g.duration_s >= 0.0 && g.count >= 0,
                     "task group must have non-negative duration and count");
  }
  std::sort(groups.begin(), groups.end(),
            [](const TaskGroup& a, const TaskGroup& b) {
              return a.duration_s > b.duration_s;
            });

  const auto w = static_cast<std::size_t>(workers);

  // One worker executes everything back to back.
  if (w == 1) return total_work(groups);

  // Fewer tasks than workers: every task lands on its own idle worker, so
  // the makespan is the longest task (groups are sorted descending).
  if (total_tasks(groups) <= workers) return groups.front().duration_s;

  std::vector<double> load(w, 0.0);
  std::vector<std::int64_t> extra(w, 0);
  using Entry = std::pair<double, std::size_t>;
  std::vector<Entry> heap;
  heap.reserve(w);

  // Greedy assignment of `count` identical tasks of duration d: each task
  // goes to the currently least-loaded worker.
  auto assign_greedy = [&](double d, std::int64_t count) {
    if (count <= 0 || d == 0.0) {
      return;
    }
    if (count > static_cast<std::int64_t>(w)) {
      // Water-fill bulk step: greedy raises the lowest loads toward the
      // common level T = (sum load + count*d) / w. Pre-assign the whole
      // multiples and leave the (O(w)-sized) remainder to the exact heap.
      double total = static_cast<double>(count) * d;
      for (double l : load) total += l;
      const double level = total / static_cast<double>(w);
      std::int64_t assigned = 0;
      for (std::size_t i = 0; i < w; ++i) {
        const auto n = static_cast<std::int64_t>(
            std::floor((level - load[i]) / d));
        extra[i] = std::max<std::int64_t>(0, n);
        assigned += extra[i];
      }
      // Clamp overshoot (possible when some workers sit above the level):
      // remove tasks from the workers that ended up highest.
      while (assigned > count) {
        std::size_t arg = 0;
        double best = -1.0;
        for (std::size_t i = 0; i < w; ++i) {
          if (extra[i] == 0) continue;
          const double top = load[i] + static_cast<double>(extra[i]) * d;
          if (top > best) {
            best = top;
            arg = i;
          }
        }
        --extra[arg];
        --assigned;
      }
      for (std::size_t i = 0; i < w; ++i) {
        load[i] += static_cast<double>(extra[i]) * d;
      }
      count -= assigned;
      if (count == 0) return;
    }
    // Exact greedy for the remaining (< w) tasks, on a reused binary heap.
    heap.clear();
    for (std::size_t i = 0; i < w; ++i) heap.emplace_back(load[i], i);
    std::make_heap(heap.begin(), heap.end(), std::greater<>{});
    for (std::int64_t t = 0; t < count; ++t) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
      auto& [l, i] = heap.back();
      l += d;
      load[i] = l;
      std::push_heap(heap.begin(), heap.end(), std::greater<>{});
    }
  };

  for (const auto& g : groups) assign_greedy(g.duration_s, g.count);
  return *std::max_element(load.begin(), load.end());
}

double total_work(const std::vector<TaskGroup>& groups) {
  double s = 0.0;
  for (const auto& g : groups) s += g.duration_s * static_cast<double>(g.count);
  return s;
}

std::int64_t total_tasks(const std::vector<TaskGroup>& groups) {
  std::int64_t n = 0;
  for (const auto& g : groups) n += g.count;
  return n;
}

}  // namespace ccpred::sim
