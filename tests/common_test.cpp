// Unit tests for the common utilities: rng, strings, csv, thread pool,
// table formatting and the check macros.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <numeric>
#include <set>
#include <thread>

#include "ccpred/common/csv.hpp"
#include "ccpred/common/error.hpp"
#include "ccpred/common/rng.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/common/strings.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/common/thread_pool.hpp"

namespace ccpred {
namespace {

// ---------- error macros ----------

TEST(ErrorTest, CheckThrowsWithContext) {
  try {
    CCPRED_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) {
  EXPECT_NO_THROW(CCPRED_CHECK(2 + 2 == 4));
}

// ---------- rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanCloseToHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversFullRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen, (std::set<std::int64_t>{3, 4, 5, 6, 7}));
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, UniformIntBadRangeThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform_int(3, 2), Error);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScaled) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, NormalNegativeStddevThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(17);
  std::vector<double> v(20001);
  for (auto& x : v) x = rng.lognormal_median(5.0, 0.3);
  std::sort(v.begin(), v.end());
  EXPECT_NEAR(v[v.size() / 2], 5.0, 0.15);
  EXPECT_GT(v.front(), 0.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitStreamsIndependent) {
  Rng parent(21);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child1.next() == child2.next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, SampleWithoutReplacementUniqueAndInRange) {
  Rng rng(23);
  const auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto i : s) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleAllIsPermutation) {
  Rng rng(23);
  auto s = rng.sample_without_replacement(10, 10);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, SampleTooManyThrows) {
  Rng rng(23);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), Error);
}

TEST(RngTest, BootstrapIndicesInRange) {
  Rng rng(29);
  const auto b = rng.bootstrap_indices(50);
  EXPECT_EQ(b.size(), 50u);
  for (auto i : b) EXPECT_LT(i, 50u);
}

TEST(RngTest, PermutationIsBijection) {
  Rng rng(31);
  auto p = rng.permutation(64);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(p[i], i);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 2, 3, 5, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

// ---------- strings ----------

TEST(StringsTest, SplitBasic) {
  const auto f = split("a,b,c", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,,b", ',').size(), 3u);
  EXPECT_EQ(split(",", ',').size(), 2u);
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n a \r"), "a");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2e3 "), -2000.0);
  EXPECT_THROW(parse_double("abc"), Error);
  EXPECT_THROW(parse_double("1.5x"), Error);
  EXPECT_THROW(parse_double(""), Error);
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_THROW(parse_int("4.2"), Error);
  EXPECT_THROW(parse_int(""), Error);
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("hello", "lo"));
  EXPECT_TRUE(starts_with("x", ""));
}

// ---------- csv ----------

TEST(CsvTest, ParseAndAccess) {
  const auto t = parse_csv("a,b\n1,2\n3,4\n");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.column("b"), 1u);
  EXPECT_DOUBLE_EQ(t.rows[1][0], 3.0);
}

TEST(CsvTest, MissingColumnThrows) {
  const auto t = parse_csv("a,b\n1,2\n");
  EXPECT_THROW(t.column("c"), Error);
}

TEST(CsvTest, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), Error);
}

TEST(CsvTest, NonNumericThrows) {
  EXPECT_THROW(parse_csv("a\nxyz\n"), Error);
}

TEST(CsvTest, EmptyTextThrows) { EXPECT_THROW(parse_csv(""), Error); }

TEST(CsvTest, SkipsBlankLinesAndCr) {
  const auto t = parse_csv("a,b\r\n\r\n1,2\r\n");
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(CsvTest, RoundTrip) {
  CsvTable t;
  t.header = {"x", "y"};
  t.rows = {{1.5, -2.25}, {3.0, 4.125}};
  const auto back = parse_csv(to_csv(t));
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(back.rows[0][1], -2.25);
  EXPECT_DOUBLE_EQ(back.rows[1][0], 3.0);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable t;
  t.header = {"v"};
  t.rows = {{42.0}};
  const std::string path = ::testing::TempDir() + "/ccpred_csv_test.csv";
  write_csv(t, path);
  const auto back = read_csv(path);
  EXPECT_DOUBLE_EQ(back.rows[0][0], 42.0);
}

TEST(CsvTest, UnreadableFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/dir/file.csv"), Error);
}

// ---------- thread pool ----------

TEST(ThreadPoolTest, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto f = pool.submit([&] { counter = 42; });
  f.get();
  EXPECT_EQ(counter, 42);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(f.get(), Error);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; }, &pool);
  for (const auto& h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(0, 10,
                            [&](std::size_t i) {
                              if (i == 7) throw Error("inner failure");
                            },
                            &pool),
               Error);
}

TEST(ThreadPoolTest, NestedParallelForRunsSerially) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(0, 4,
               [&](std::size_t) {
                 parallel_for(0, 4, [&](std::size_t) { total++; }, &pool);
               },
               &pool);
  EXPECT_EQ(total, 16);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPoolTest, PostRunsFireAndForgetTask) {
  ThreadPool pool(2);
  std::promise<int> done;
  pool.post([&] { done.set_value(7); });
  EXPECT_EQ(done.get_future().get(), 7);
}

TEST(ThreadPoolTest, TryPostBoundsTheQueue) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  pool.post([&] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();  // the lone worker is now parked on the gate

  // With the worker busy, a limit of 2 admits two queued tasks and
  // rejects the third without blocking.
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.try_post([&] { ran++; }, 2));
  EXPECT_TRUE(pool.try_post([&] { ran++; }, 2));
  EXPECT_EQ(pool.queue_size(), 2u);
  EXPECT_FALSE(pool.try_post([&] { ran++; }, 2));
  EXPECT_EQ(pool.queue_size(), 2u);

  release.set_value();
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ran.load() != 2 && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 2);  // the rejected task never runs
  EXPECT_EQ(pool.queue_size(), 0u);
}

TEST(ThreadPoolTest, TryPostAdmitsWhenIdle) {
  ThreadPool pool(2);
  std::promise<int> done;
  EXPECT_TRUE(pool.try_post([&] { done.set_value(9); }, 1));
  EXPECT_EQ(done.get_future().get(), 9);
}

TEST(TaskGroupTest, WaitBlocksUntilAllTasksFinish) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    group.run([&] { counter++; });
  }
  group.wait();
  EXPECT_EQ(counter, 64);
}

TEST(TaskGroupTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([i] {
      if (i == 3) throw Error("task failure");
    });
  }
  EXPECT_THROW(group.wait(), Error);
}

TEST(TaskGroupTest, RemainingTasksStillRunAfterOneThrows) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    group.run([&ran, i] {
      ran++;
      if (i == 0) throw Error("early failure");
    });
  }
  EXPECT_THROW(group.wait(), Error);
  EXPECT_EQ(ran, 16);
}

TEST(TaskGroupTest, ReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  group.run([&] { counter++; });
  group.wait();
  group.run([&] { counter++; });
  group.wait();
  EXPECT_EQ(counter, 2);
}

TEST(TaskGroupTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  group.wait();  // must not hang or throw
}

// ---------- stopwatch & table ----------

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch w;
  const double t1 = w.elapsed_s();
  const double t2 = w.elapsed_s();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  w.reset();
  EXPECT_LT(w.elapsed_ms(), 1000.0);
}

TEST(TableTest, FormatsAlignedRows) {
  TextTable t({"name", "value"}, "demo");
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const auto s = t.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableTest, CellHelpers) {
  EXPECT_EQ(TextTable::cell(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::cell(static_cast<long long>(7)), "7");
}

}  // namespace
}  // namespace ccpred
