#include "bench_util.hpp"

#include <cstdlib>

#include "ccpred/simd/simd.hpp"

#ifndef CCPRED_GIT_REV
#define CCPRED_GIT_REV "unknown"
#endif

namespace ccpred::bench {

std::string provenance_json() {
  const simd::CpuFeatures cpu = simd::detect_cpu();
  std::string out = "{\"git_rev\": \"";
  out += CCPRED_GIT_REV;
  out += "\", \"cpu_avx2\": ";
  out += cpu.avx2 ? "true" : "false";
  out += ", \"cpu_fma\": ";
  out += cpu.fma ? "true" : "false";
  out += ", \"simd_mode\": \"";
  out += simd::mode_name(simd::active_mode());
  out += "\"}";
  return out;
}

bool fast_mode() {
  const char* v = std::getenv("CCPRED_BENCH_FAST");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

sim::CcsdSimulator make_simulator(const std::string& machine) {
  return sim::CcsdSimulator(machine == "aurora"
                                ? sim::MachineModel::aurora()
                                : sim::MachineModel::frontier());
}

PaperData load_paper_data(const std::string& machine, std::uint64_t seed,
                          bool full_rows) {
  PaperData out{.simulator = make_simulator(machine), .full = {}, .split = {}};
  std::size_t total = data::paper_total_rows(machine);
  std::size_t test = data::paper_test_rows(machine);
  if (fast_mode() && !full_rows) {
    total /= 4;
    test /= 4;
  }
  data::GeneratorOptions opt;
  opt.seed = seed;
  opt.target_total = total;
  out.full = data::generate_dataset(
      out.simulator, data::problems_for(out.simulator.machine().name), opt);
  Rng rng(seed ^ 0x51ULL);
  auto split = data::stratified_split(out.full, test, rng);
  data::ensure_config_coverage(out.full, split);
  out.split = data::apply_split(out.full, split);
  return out;
}

}  // namespace ccpred::bench
