#pragma once

/// \file wire.hpp
/// The serving subsystem's binary batch protocol: length-prefixed frames
/// carrying N requests (and N responses back) per round trip, so a client
/// pays the syscall + dispatch overhead once per batch instead of once per
/// request. Line-JSON (protocol.hpp) stays the compatibility front end on
/// the same port: frame magic begins with byte 0xC3, which can never open
/// a JSON line, so a server can tell the two apart from the first byte of
/// every message and interleave them freely on one connection.
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic: C3 'C' 'P' 'B'
///   4       1     version (currently 1)
///   5       1     kind: 0 = request frame, 1 = response frame
///   6       2     count: records in this frame (u16)
///   8       4     payload length in bytes (u32, <= kMaxFramePayload)
///   12      ...   payload: `count` consecutive records
///
/// Records encode every protocol field natively (strings as u32 length +
/// bytes, doubles as IEEE-754 bit patterns), so decode(encode(x)) == x
/// exactly and a decoded response renders via format_response() into the
/// byte-identical JSON line the server would have sent for the same
/// request — the bit-identity gate in bench_serve_fleet leans on this.
///
/// Robustness contract (fuzzed in protocol_fuzz_test): probe_frame() never
/// reads past `size`, rejects oversized declared lengths from the header
/// alone (before any payload is buffered), and decode_*() throws only
/// ccpred::Error on malformed payloads.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ccpred/serve/protocol.hpp"

namespace ccpred::serve::wire {

inline constexpr unsigned char kMagic[4] = {0xC3, 'C', 'P', 'B'};
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;
/// Hard cap on one frame's payload; a header declaring more is rejected
/// before any buffering.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;
/// Hard cap on records per frame.
inline constexpr std::size_t kMaxFrameRecords = 1024;
/// Hard cap on one encoded string field.
inline constexpr std::size_t kMaxStringBytes = 1u << 16;

enum class FrameKind : std::uint8_t { kRequest = 0, kResponse = 1 };

struct FrameHeader {
  std::uint8_t version = kVersion;
  FrameKind kind = FrameKind::kRequest;
  std::uint16_t count = 0;
  std::uint32_t payload_bytes = 0;
};

/// True when `first` can only open a binary frame (it is the first magic
/// byte, which is never valid at the start of a JSON line).
bool starts_frame(unsigned char first);

enum class FrameStatus {
  kNeedMore,  ///< valid prefix so far; read more bytes
  kHeader,    ///< full, valid header parsed into *header
  kBad,       ///< malformed header; *error says why (fatal for the stream)
};

/// Incremental header inspection over whatever has been buffered so far.
/// Never reads past `size`. kHeader only validates the 12 header bytes;
/// the caller still waits for `header->payload_bytes` more bytes before
/// decoding.
FrameStatus probe_frame(const unsigned char* data, std::size_t size,
                        FrameHeader* header, std::string* error);

/// Encodes a complete frame (header + payload).
std::string encode_request_frame(const std::vector<Request>& requests);
std::string encode_response_frame(const std::vector<Response>& responses);

/// Decodes the payload of a frame whose header probe_frame() accepted.
/// `payload` must hold exactly `header.payload_bytes` bytes. Throws
/// ccpred::Error on any malformation (wrong kind, truncated record,
/// trailing bytes, oversized string, invalid op, bad wall-time batch).
std::vector<Request> decode_request_frame(const FrameHeader& header,
                                          const unsigned char* payload);
std::vector<Response> decode_response_frame(const FrameHeader& header,
                                            const unsigned char* payload);

}  // namespace ccpred::serve::wire
