/// Reproduces paper Table 6: Frontier shortest node-hours (BQ) results.

#include "stq_bq_tables.hpp"

int main() {
  return ccpred::bench::run_optimal_table(
      "frontier", ccpred::guide::Objective::kNodeHours,
      "Table 6: Frontier shortest node hours results");
}
